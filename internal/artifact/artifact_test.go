package artifact

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/plancache"
	"repro/internal/protocols"
	"repro/internal/ratio"
	"repro/internal/sched"
)

// buildPlan constructs a real plan the way the serving layer does: base graph
// from the named algorithm, forest for the demand, schedule on mc mixers.
func buildPlan(t testing.TB, algo core.Algorithm, r ratio.Ratio, demand, mc int, scheduler string) (plancache.Key, *plancache.Plan) {
	t.Helper()
	g, err := algo.Build(r)
	if err != nil {
		t.Fatalf("%v.Build: %v", algo, err)
	}
	f, err := forest.Build(g, demand)
	if err != nil {
		t.Fatalf("forest.Build: %v", err)
	}
	var s *sched.Schedule
	switch scheduler {
	case "MMS":
		s, err = sched.MMS(f, mc)
	case "SRS":
		s, err = sched.SRSFrom(f, mc, 0)
	default:
		t.Fatalf("unknown scheduler %q", scheduler)
	}
	if err != nil {
		t.Fatalf("%s: %v", scheduler, err)
	}
	return plancache.KeyFor(g, demand, mc, scheduler, plancache.PristinePolicy), plancache.NewPlan(f, s)
}

// TestRoundTrip proves encode → decode → verify is the identity across every
// base algorithm × scheduler: the decoded plan audits clean, reproduces the
// original aggregates, and re-encodes to byte-identical artifacts (the
// determinism the cross-node content addresses rely on).
func TestRoundTrip(t *testing.T) {
	ratios := []ratio.Ratio{protocols.PCR16().Ratio}
	for _, p := range protocols.Table2() {
		ratios = append(ratios, p.Ratio)
	}
	for _, algo := range core.AllAlgorithms() {
		for _, scheduler := range []string{"MMS", "SRS"} {
			for ri, r := range ratios {
				k, p := buildPlan(t, algo, r, 7, 4, scheduler)
				data, err := Encode(k, p)
				if err != nil {
					t.Fatalf("%v/%s ratio %d: Encode: %v", algo, scheduler, ri, err)
				}
				a, err := DecodeVerified(data)
				if err != nil {
					t.Fatalf("%v/%s ratio %d: DecodeVerified: %v", algo, scheduler, ri, err)
				}
				if a.Key != k {
					t.Fatalf("key round-trip: got %+v, want %+v", a.Key, k)
				}
				if a.Address() != AddressFor(k) {
					t.Fatal("address disagrees with AddressFor")
				}
				if a.Plan.Storage != p.Storage {
					t.Fatalf("storage: got %d, want %d", a.Plan.Storage, p.Storage)
				}
				if a.Plan.Stats.Mixes != p.Stats.Mixes || a.Plan.Stats.Waste != p.Stats.Waste ||
					a.Plan.Stats.Reuses != p.Stats.Reuses || a.Plan.Stats.Trees != p.Stats.Trees {
					t.Fatalf("stats: got %+v, want %+v", a.Plan.Stats, p.Stats)
				}
				if a.Plan.Schedule.Cycles != p.Schedule.Cycles {
					t.Fatalf("cycles: got %d, want %d", a.Plan.Schedule.Cycles, p.Schedule.Cycles)
				}
				// Deterministic re-encode: decoded plans address-match their source.
				again, err := Encode(a.Key, a.Plan)
				if err != nil {
					t.Fatalf("re-encode: %v", err)
				}
				if !bytes.Equal(data, again) {
					t.Fatalf("%v/%s ratio %d: re-encode differs from original", algo, scheduler, ri)
				}
			}
		}
	}
}

// TestAddressIsKeyDerived pins the content-address contract: the address is a
// pure function of the key — identical for identical keys, distinct across
// every key dimension the planner varies.
func TestAddressIsKeyDerived(t *testing.T) {
	k, _ := buildPlan(t, core.MM, protocols.PCR16().Ratio, 5, 3, "MMS")
	if AddressFor(k) != AddressFor(k) {
		t.Fatal("address not deterministic")
	}
	if len(AddressFor(k)) != 64 {
		t.Fatalf("address length %d, want 64 hex chars", len(AddressFor(k)))
	}
	for _, mutate := range []func(plancache.Key) plancache.Key{
		func(k plancache.Key) plancache.Key { k.Demand++; return k },
		func(k plancache.Key) plancache.Key { k.Mixers++; return k },
		func(k plancache.Key) plancache.Key { k.Scheduler = "SRS"; return k },
		func(k plancache.Key) plancache.Key { k.Policy = "degraded"; return k },
		func(k plancache.Key) plancache.Key { k.Graph ^= 1; return k },
	} {
		if AddressFor(mutate(k)) == AddressFor(k) {
			t.Fatal("mutated key collides with original address")
		}
	}
}

// TestCorruptArtifactsAreTypedErrors is the regression test the acceptance
// criteria name: damaged artifacts must surface as typed errors — ErrVersion,
// ErrIntegrity, ErrCorrupt or ErrVerify — never as panics or silent success.
func TestCorruptArtifactsAreTypedErrors(t *testing.T) {
	k, p := buildPlan(t, core.RMA, protocols.PCR16().Ratio, 6, 3, "MMS")
	data, err := Encode(k, p)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 4, len(magic), len(data) / 2, len(data) - 1} {
			if _, err := Decode(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrVersion) {
				t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
			}
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[7] = '9' // DMFBART9
		if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		// Flip every byte in turn: each flip must be caught by the integrity
		// trailer (payload flips) or the hash comparison (trailer flips).
		for i := len(magic); i < len(data); i++ {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x40
			if _, err := Decode(bad); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("flip at %d: got %v, want ErrIntegrity", i, err)
			}
		}
	})

	t.Run("resealed-corruption", func(t *testing.T) {
		// An attacker (or a buggy writer) that flips payload bytes and
		// recomputes the trailer gets past the integrity hash; the structural
		// decode or the verification audit must still catch it.
		var caught int
		for i := len(magic); i < len(data)-32; i++ {
			bad := append([]byte(nil), data[:len(data)-32]...)
			bad[i] ^= 0x04
			bad = seal(bad)
			a, err := Decode(bad)
			if err == nil {
				err = a.Verify()
			}
			if err == nil {
				continue // some flips land in dont-care claim space that still verifies; none may panic
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVerify) && !errors.Is(err, ErrVersion) {
				t.Fatalf("reseal flip at %d: untyped error %v", i, err)
			}
			caught++
		}
		if caught == 0 {
			t.Fatal("no resealed corruption was caught")
		}
	})
}

// TestEncodeRejectsInconsistentKey: an artifact must never be born with a key
// that does not describe its plan.
func TestEncodeRejectsInconsistentKey(t *testing.T) {
	k, p := buildPlan(t, core.MM, protocols.PCR16().Ratio, 5, 3, "MMS")
	for _, bad := range []plancache.Key{
		func() plancache.Key { k2 := k; k2.Graph++; return k2 }(),
		func() plancache.Key { k2 := k; k2.Demand++; return k2 }(),
		func() plancache.Key { k2 := k; k2.Algo = "RMA"; return k2 }(),
	} {
		if _, err := Encode(bad, p); !errors.Is(err, ErrVerify) {
			t.Fatalf("Encode(%+v) = %v, want ErrVerify", bad, err)
		}
	}
	if _, err := Encode(k, nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("Encode(nil plan) = %v, want ErrVerify", err)
	}
}

// TestVerifyCatchesStaleClaims: decoded aggregates that disagree with
// recomputation fail Verify even when the bytes are intact.
func TestVerifyCatchesStaleClaims(t *testing.T) {
	k, p := buildPlan(t, core.MTCS, protocols.PCR16().Ratio, 4, 2, "SRS")
	data, err := Encode(k, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	a.Plan.Storage++ // stale claim
	if err := a.Verify(); !errors.Is(err, ErrVerify) {
		t.Fatalf("stale storage claim: got %v, want ErrVerify", err)
	}
	a.Plan.Storage--
	a.Plan.Stats.Waste++
	if err := a.Verify(); !errors.Is(err, ErrVerify) {
		t.Fatalf("stale waste claim: got %v, want ErrVerify", err)
	}
}

// seal recomputes the integrity trailer over a mutated payload — modelling a
// buggy writer whose bytes are self-consistent but semantically wrong.
func seal(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	return append(payload, sum[:]...)
}
