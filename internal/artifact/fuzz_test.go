package artifact

import (
	"testing"

	"repro/internal/core"
	"repro/internal/protocols"
)

// FuzzArtifactDecode drives arbitrary bytes through Decode + Verify. The
// contract under fuzz is total: any input either decodes to a plan that
// passes the full audit or returns a typed error — no panics, no unbounded
// allocation, no silently wrong plan. The corpus seeds valid artifacts (so
// the fuzzer mutates from deep inside the format) plus hand-corrupted
// variants of the classes the decoder must catch.
func FuzzArtifactDecode(f *testing.F) {
	for _, algo := range []core.Algorithm{core.MM, core.RMA} {
		for _, scheduler := range []string{"MMS", "SRS"} {
			k, p := buildPlan(f, algo, protocols.PCR16().Ratio, 5, 3, scheduler)
			data, err := Encode(k, p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			// Seed corrupt variants: truncation, payload flip, resealed flip.
			f.Add(data[:len(data)/2])
			flipped := append([]byte(nil), data...)
			flipped[len(flipped)/2] ^= 0xff
			f.Add(flipped)
			resealed := append([]byte(nil), data[:len(data)-32]...)
			resealed[len(resealed)/3] ^= 0x01
			f.Add(seal(resealed))
		}
	}
	f.Add([]byte{})
	f.Add([]byte("DMFBART1"))
	f.Add([]byte("DMFBART1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return
		}
		// Structural decode succeeded; Verify must not panic either way.
		_ = a.Verify()
	})
}
