package synth

import (
	"runtime"
	"testing"

	"repro/internal/ratio"
)

func TestPaperDatasetSize(t *testing.T) {
	ds := PaperDataset()
	// The complete population of target ratios with L=32 and 2<=N<=12 is
	// 6289 partitions; the paper evaluates on 6058 of them (selection
	// unspecified). See DESIGN.md §4 and EXPERIMENTS.md.
	if len(ds) != 6289 {
		t.Errorf("dataset size = %d, want 6289", len(ds))
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	for _, c := range []struct {
		L          int64
		minN, maxN int
	}{
		{16, 2, 5},
		{32, 2, 12},
		{8, 1, 8},
		{4, 2, 2},
	} {
		ds, err := Dataset(c.L, c.minN, c.maxN)
		if err != nil {
			t.Fatalf("Dataset(%d,%d,%d): %v", c.L, c.minN, c.maxN, err)
		}
		if got := Count(c.L, c.minN, c.maxN); got != int64(len(ds)) {
			t.Errorf("Count(%d,%d,%d) = %d, enumeration = %d", c.L, c.minN, c.maxN, got, len(ds))
		}
	}
}

func TestDatasetEntriesValid(t *testing.T) {
	ds, err := Dataset(16, 2, 6)
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	seen := map[string]bool{}
	for _, r := range ds {
		if r.Sum() != 16 {
			t.Fatalf("ratio %v has sum %d", r, r.Sum())
		}
		if n := r.N(); n < 2 || n > 6 {
			t.Fatalf("ratio %v has %d parts", r, n)
		}
		// Parts descending (canonical partition form).
		for i := 1; i < r.N(); i++ {
			if r.Part(i) > r.Part(i-1) {
				t.Fatalf("ratio %v not in descending order", r)
			}
		}
		if seen[r.String()] {
			t.Fatalf("duplicate ratio %v", r)
		}
		seen[r.String()] = true
	}
}

func TestSmallCases(t *testing.T) {
	// Partitions of 4 into 2 parts: 3+1, 2+2.
	ds, err := Dataset(4, 2, 2)
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	if len(ds) != 2 {
		t.Fatalf("partitions of 4 into 2 parts = %d, want 2", len(ds))
	}
	want := map[string]bool{"3:1": true, "2:2": true}
	for _, r := range ds {
		if !want[r.String()] {
			t.Errorf("unexpected partition %v", r)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Dataset(30, 2, 5); err == nil {
		t.Error("non-power-of-two L accepted")
	}
	if _, err := Dataset(16, 0, 5); err == nil {
		t.Error("minN=0 accepted")
	}
	if _, err := Dataset(16, 5, 2); err == nil {
		t.Error("maxN < minN accepted")
	}
	if Count(30, 5, 2) != 0 {
		t.Error("Count with bad range should be 0")
	}
}

// TestDatasetParallelOrderStable asserts the fan-out per fluid count keeps
// the population sequence identical to the sequential enumeration, regardless
// of GOMAXPROCS.
func TestDatasetParallelOrderStable(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	seq, err := Dataset(32, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	par, err := Dataset(32, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel dataset has %d ratios, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].String() != par[i].String() {
			t.Fatalf("dataset[%d]: parallel %v, sequential %v", i, par[i], seq[i])
		}
	}
}

func TestNBiggerThanL(t *testing.T) {
	ds, err := Dataset(4, 2, 12)
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	// Partitions of 4 into 2..4 parts: {3:1, 2:2}, {2:1:1}, {1:1:1:1}.
	if len(ds) != 4 {
		t.Errorf("got %d partitions, want 4", len(ds))
	}
	_ = ratio.MustNew // keep the import honest if the test shrinks
}
