// Package synth generates the synthetic target-ratio benchmark of the DAC
// 2014 droplet-streaming paper (§6): target ratios of N different fluids,
// 2 <= N <= 12, with ratio-sum L = 32. The paper evaluates on 6058 such
// ratios without specifying their generation; this package enumerates the
// complete population deterministically — every integer partition of L into
// N parts — so results are exactly reproducible (see DESIGN.md §4). Fluid
// order within a ratio does not affect any of the algorithms' costs, so
// partitions (descending parts) represent all ratios without duplication.
package synth

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/ratio"
)

// partitionsInto enumerates every integer partition of L into exactly n
// parts (descending), in the same order the historical sequential
// enumeration produced.
func partitionsInto(L int64, n int) ([]ratio.Ratio, error) {
	var out []ratio.Ratio
	parts := make([]int64, 0, n)
	var rec func(remaining int64, slots int, maxPart int64) error
	rec = func(remaining int64, slots int, maxPart int64) error {
		if slots == 0 {
			if remaining != 0 {
				return nil
			}
			r, err := ratio.New(parts...)
			if err != nil {
				return err
			}
			out = append(out, r)
			return nil
		}
		// Each of the `slots` remaining parts is at least 1; the next part
		// is at most maxPart (descending order) and must leave at least
		// slots-1 units for the rest.
		hi := maxPart
		if remaining-int64(slots-1) < hi {
			hi = remaining - int64(slots-1)
		}
		for p := hi; p >= 1; p-- {
			// Feasibility: the remaining slots-1 parts are each <= p.
			if remaining-p > p*int64(slots-1) {
				continue
			}
			parts = append(parts, p)
			if err := rec(remaining-p, slots-1, p); err != nil {
				return err
			}
			parts = parts[:len(parts)-1]
		}
		return nil
	}
	if err := rec(L, n, L-int64(n)+1); err != nil {
		return nil, err
	}
	return out, nil
}

// Dataset enumerates every integer partition of sum L into n parts for each
// n in [minN, maxN], as ratios with descending parts. L must be a power of
// two for the results to be valid mix-split targets.
//
// Each fluid count n is enumerated independently, so the generation fans
// out per n over a GOMAXPROCS-sized worker pool; the per-n chunks are
// concatenated in ascending-n order, keeping the population sequence
// identical to the historical sequential enumeration.
func Dataset(L int64, minN, maxN int) ([]ratio.Ratio, error) {
	if L < 1 || L&(L-1) != 0 {
		return nil, fmt.Errorf("synth: L=%d is not a power of two", L)
	}
	if minN < 1 || maxN < minN {
		return nil, fmt.Errorf("synth: invalid fluid-count range [%d, %d]", minN, maxN)
	}
	var ns []int
	for n := minN; n <= maxN && int64(n) <= L; n++ {
		ns = append(ns, n)
	}
	chunks, err := parallel.Map(ns, func(_ int, n int) ([]ratio.Ratio, error) {
		return partitionsInto(L, n)
	})
	if err != nil {
		return nil, err
	}
	var out []ratio.Ratio
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// PaperDataset returns the paper's benchmark population: all ratios with
// L = 32 and 2 <= N <= 12.
func PaperDataset() []ratio.Ratio {
	ds, err := Dataset(32, 2, 12)
	if err != nil {
		panic(err) // parameters are constants; cannot fail
	}
	return ds
}

// Count returns the number of partitions Dataset(L, minN, maxN) yields
// without materialising them (dynamic programming over partition counts).
func Count(L int64, minN, maxN int) int64 {
	if L < 1 || minN < 1 || maxN < minN {
		return 0
	}
	// p[k][s] = partitions of s into exactly k parts.
	p := make([][]int64, maxN+1)
	for k := range p {
		p[k] = make([]int64, L+1)
	}
	p[0][0] = 1
	for k := 1; k <= maxN; k++ {
		for s := int64(1); s <= L; s++ {
			// Recurrence: partitions of s into k parts = partitions of s-1
			// into k-1 parts (a part equal to 1) + partitions of s-k into k
			// parts (subtract 1 from every part).
			p[k][s] = p[k-1][s-1]
			if s >= int64(k) {
				p[k][s] += p[k][s-int64(k)]
			}
		}
	}
	var total int64
	for k := minN; k <= maxN; k++ {
		total += p[k][L]
	}
	return total
}
