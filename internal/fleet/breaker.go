package fleet

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker guards one chip: repeated unrecoverable failures open it, opening
// applies a capped exponential cooldown, and after the cooldown a single
// probe assay is let through (half-open) — its outcome closes or re-opens
// the breaker. All methods are called under the fleet mutex.
type breaker struct {
	threshold   int           // consecutive failures that open the breaker
	cooldown    time.Duration // first open's cooldown
	maxCooldown time.Duration // cap for the exponential cooldown

	state       breakerState
	consecFails int
	opens       int       // times opened since the last success (backoff exponent)
	until       time.Time // when an open breaker transitions to half-open
	probing     bool      // a half-open probe is in flight
}

// canAdmit reports (without mutating state) whether an assay could be
// admitted at now.
func (b *breaker) canAdmit(now time.Time) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return !now.Before(b.until)
	case breakerHalfOpen:
		return !b.probing
	default:
		return false
	}
}

// admit transitions the breaker for an admitted assay: an expired open
// breaker becomes half-open with this assay as its probe.
func (b *breaker) admit(now time.Time) {
	if b.state == breakerOpen && !now.Before(b.until) {
		b.state = breakerHalfOpen
	}
	if b.state == breakerHalfOpen {
		b.probing = true
	}
}

// success records a completed assay: the breaker closes and the failure
// streak resets.
func (b *breaker) success() {
	b.state = breakerClosed
	b.consecFails = 0
	b.opens = 0
	b.probing = false
}

// failure records an unrecoverable assay failure, returning true when this
// failure opened the breaker (for the obs counter). A failed half-open
// probe re-opens immediately with a doubled cooldown.
func (b *breaker) failure(now time.Time) (opened bool) {
	b.consecFails++
	b.probing = false
	if b.state == breakerHalfOpen || b.consecFails >= b.threshold {
		b.open(now)
		return true
	}
	return false
}

func (b *breaker) open(now time.Time) {
	b.opens++
	d := b.cooldown
	for i := 1; i < b.opens && d < b.maxCooldown; i++ {
		d *= 2
	}
	if d > b.maxCooldown {
		d = b.maxCooldown
	}
	b.state = breakerOpen
	b.until = now.Add(d)
}

// recoversBy returns the time an open breaker admits again (zero time when
// it already does).
func (b *breaker) recoversBy() time.Time {
	if b.state == breakerOpen {
		return b.until
	}
	return time.Time{}
}

// Breaker is the exported, self-locking form of the chip breaker for callers
// outside the fleet scheduler — the cluster tier guards every peer node with
// one, so a crashed or partitioned peer costs each caller a handful of
// failed probes instead of a timeout per request. Semantics are identical to
// the chip breaker: `threshold` consecutive failures open it, opening backs
// off with a capped doubling cooldown, and after the cooldown a single probe
// (Allow admits exactly one caller in half-open) decides closed vs re-open.
type Breaker struct {
	mu sync.Mutex
	b  breaker
}

// NewBreaker builds a closed breaker. threshold <= 0 defaults to 3;
// maxCooldown <= cooldown defaults to 16× cooldown.
func NewBreaker(threshold int, cooldown, maxCooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 250 * time.Millisecond
	}
	if maxCooldown < cooldown {
		maxCooldown = 16 * cooldown
	}
	return &Breaker{b: breaker{threshold: threshold, cooldown: cooldown, maxCooldown: maxCooldown}}
}

// Allow reports whether a call may proceed, admitting it if so (an expired
// open breaker admits exactly one half-open probe). Every Allow that returns
// true must be followed by Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if !b.b.canAdmit(now) {
		return false
	}
	b.b.admit(now)
	return true
}

// Success records a completed call: the breaker closes, streaks reset.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.b.success()
}

// Failure records a failed call, returning true when this failure opened the
// breaker.
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.failure(time.Now())
}

// State renders the breaker state ("closed", "open", "half-open").
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.state.String()
}
