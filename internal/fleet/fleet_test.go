package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/forest"
	"repro/internal/ratio"
	"repro/internal/runtime"
)

func mustRatio(t testing.TB, s string) ratio.Ratio {
	t.Helper()
	r, err := ratio.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func quickCfg(chips ...ChipSpec) Config {
	return Config{
		Chips:       chips,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	}
}

func TestFleetRunsAssay(t *testing.T) {
	f := New(quickCfg(DefaultChips(2)...))
	res, err := f.Run(context.Background(), AssaySpec{
		Target: mustRatio(t, "1:3"), Demand: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip == "" || res.Report == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.Attempts != 1 || res.Reassignments != 0 {
		t.Fatalf("healthy fleet took %d attempts, %d reassignments", res.Attempts, res.Reassignments)
	}
	if res.Report.Emitted < 4 {
		t.Fatalf("emitted %d droplets, want >= 4", res.Report.Emitted)
	}
	if err := res.Report.Audit.Err(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	h := f.Health()
	ran := 0
	for _, c := range h {
		ran += c.AssaysRun
	}
	if ran != 1 {
		t.Fatalf("fleet health counts %d assays, want 1", ran)
	}
}

func TestFleetBadDemand(t *testing.T) {
	f := New(quickCfg(DefaultChips(1)...))
	if _, err := f.Run(context.Background(), AssaySpec{Target: mustRatio(t, "1:3")}); !errors.Is(err, forest.ErrBadDemand) {
		t.Fatalf("err = %v, want ErrBadDemand", err)
	}
}

// TestFleetReassignsOnChipFault places the assay on a small, heavily
// faulting chip first (its score beats the huge healthy chip's bin-packing
// slack penalty), watches it fail unrecoverably, and requires the fleet to
// reassign the assay to the healthy chip.
func TestFleetReassignsOnChipFault(t *testing.T) {
	cfg := quickCfg(
		ChipSpec{Name: "bad", Mixers: 3, Storage: 8, BaseFaultRate: 0.9},
		ChipSpec{Name: "good", Mixers: 100, Storage: 8},
	)
	cfg.Policy = runtime.Policy{RecoveryBudget: 1}
	f := New(cfg)
	res, err := f.Run(context.Background(), AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip != "good" {
		t.Fatalf("assay completed on %q, want reassignment to good", res.Chip)
	}
	if res.Reassignments < 1 {
		t.Fatalf("Reassignments = %d, want >= 1", res.Reassignments)
	}
	for _, h := range f.Health() {
		if h.Name == "bad" && h.Failures < 1 {
			t.Fatalf("bad chip records %d failures, want >= 1", h.Failures)
		}
	}
}

// TestFleetBreakerOpensAndTypedFailure exhausts all attempts on a fleet
// whose only chip always fails: the caller gets ErrAssayFailed wrapping the
// chip error, and enough failures trip the breaker.
func TestFleetBreakerOpensAndTypedFailure(t *testing.T) {
	cfg := quickCfg(ChipSpec{Name: "solo", Mixers: 4, Storage: 8, BaseFaultRate: 0.9})
	cfg.Policy = runtime.Policy{RecoveryBudget: 1}
	cfg.MaxAttempts = 3
	cfg.BreakerThreshold = 3
	f := New(cfg)
	_, err := f.Run(context.Background(), AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4})
	if !errors.Is(err, ErrAssayFailed) {
		t.Fatalf("err = %v, want ErrAssayFailed", err)
	}
	if !errors.Is(err, runtime.ErrUnrecoverable) {
		t.Fatalf("err = %v, want wrapped ErrUnrecoverable cause", err)
	}
	h := f.Health()[0]
	if h.State != chipOpen {
		t.Fatalf("solo chip state = %q, want %q", h.State, chipOpen)
	}
	if h.BreakerOpens < 1 {
		t.Fatalf("BreakerOpens = %d, want >= 1", h.BreakerOpens)
	}
	if f.Available() {
		t.Fatal("fleet with its only breaker open must not report Available")
	}
}

func TestFleetSaturated(t *testing.T) {
	cfg := quickCfg(ChipSpec{Name: "solo", Mixers: 2, Storage: 8})
	cfg.MaxQueue = 1
	f := New(cfg)
	// Fill the chip and the queue by hand; Run must shed immediately.
	f.mu.Lock()
	f.chips[0].usedMixers = 2
	f.queued = 1
	f.mu.Unlock()
	_, err := f.Run(context.Background(), AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
}

func TestFleetNoChips(t *testing.T) {
	cfg := quickCfg(ChipSpec{Name: "solo", Mixers: 2, Storage: 8})
	f := New(cfg)
	if err := f.DegradeChip("solo", -1, 2); err != nil {
		t.Fatal(err)
	}
	if f.Available() {
		t.Fatal("dead fleet reports Available")
	}
	_, err := f.Run(context.Background(), AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4})
	if !errors.Is(err, ErrNoChips) {
		t.Fatalf("err = %v, want ErrNoChips", err)
	}
	if f.Health()[0].State != chipDead {
		t.Fatalf("state = %q, want dead", f.Health()[0].State)
	}
	if err := f.DegradeChip("ghost", 0.5, 0); err == nil {
		t.Fatal("DegradeChip on unknown chip must error")
	}
}

// TestFleetCrossAssayWash runs two different composition classes back to
// back on a one-chip fleet: the second assay must be washed first.
func TestFleetCrossAssayWash(t *testing.T) {
	f := New(quickCfg(ChipSpec{Name: "solo", Mixers: 4, Storage: 8}))
	ctx := context.Background()
	r1, err := f.Run(ctx, AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Washed {
		t.Fatal("first assay on a virgin chip must not wash")
	}
	r2, err := f.Run(ctx, AssaySpec{Target: mustRatio(t, "3:5"), Demand: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Washed || r2.WashCycles == 0 {
		t.Fatalf("second assay of a new class must wash; got %+v", r2)
	}
	if f.Health()[0].Washes != 1 {
		t.Fatalf("Washes = %d, want 1", f.Health()[0].Washes)
	}
}

// TestFleetConcurrentMixedClasses drives many concurrent assays of two
// composition classes over a small fleet. Everything must complete; the
// contamination invariant (no cross-class co-location) is enforced inside
// placeLocked and would surface as a data race or audit failure here.
func TestFleetConcurrentMixedClasses(t *testing.T) {
	f := New(quickCfg(DefaultChips(3)...))
	targets := []string{"1:3", "3:5"}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancelFn := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancelFn()
			res, err := f.Run(ctx, AssaySpec{
				Target: mustRatio(t, targets[i%2]), Demand: 4,
			})
			if err != nil {
				errs <- fmt.Errorf("assay %d: %w", i, err)
				return
			}
			if err := res.Report.Audit.Err(); err != nil {
				errs <- fmt.Errorf("assay %d audit: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if f.Queued() != 0 {
		t.Fatalf("queue not drained: %d", f.Queued())
	}
}

func TestFleetDegradedStateAndWear(t *testing.T) {
	cfg := quickCfg(ChipSpec{Name: "solo", Mixers: 4, Storage: 8, WearPerAssay: 0.03})
	f := New(cfg)
	if f.Health()[0].State != chipHealthy {
		t.Fatalf("pristine chip state = %q", f.Health()[0].State)
	}
	if _, err := f.Run(context.Background(), AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4}); err != nil {
		t.Fatal(err)
	}
	h := f.Health()[0]
	if h.FaultRate != 0.03 {
		t.Fatalf("fault rate after one assay = %v, want 0.03 wear", h.FaultRate)
	}
	if h.State != chipDegraded {
		t.Fatalf("worn chip state = %q, want degraded", h.State)
	}
}

func TestFleetCanceledContext(t *testing.T) {
	f := New(quickCfg(DefaultChips(1)...))
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	_, err := f.Run(ctx, AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4})
	if err == nil {
		t.Fatal("canceled context must fail the assay")
	}
	if errors.Is(err, ErrAssayFailed) {
		t.Fatalf("cancellation must not be blamed on chips: %v", err)
	}
}

// TestPlacementLoadAwareTieBreak pins the E11 fix: with an empty admission
// queue the scheduler routes around a degraded chip (full −50·faultRate
// penalty), but once callers are queued behind placement the penalty decays
// and an idle degraded chip beats a busy healthy one — overflow work spills
// onto degraded capacity instead of deepening the queue.
func TestPlacementLoadAwareTieBreak(t *testing.T) {
	cfg := quickCfg(
		ChipSpec{Name: "healthy", Mixers: 4, Storage: 64},
		ChipSpec{Name: "degraded", Mixers: 4, Storage: 64, BaseFaultRate: 0.4},
	)
	f := New(cfg)
	spec := &AssaySpec{Target: mustRatio(t, "1:3"), Demand: 4}

	f.mu.Lock()
	// Load the healthy chip: most mixers reserved, deep inflight.
	f.chips[0].usedMixers = 3
	f.chips[0].inflight = 12

	// Sub-saturation: the flat penalty still routes around the degraded chip
	// even though the healthy chip is down to a 1-mixer partial grant.
	f.queued = 0
	pl := f.placeLocked(spec, 4, nil)
	if pl == nil || pl.chip.spec.Name != "healthy" {
		t.Fatalf("idle queue: placed on %v, want healthy", placedName(pl))
	}
	unplaceLocked(pl)

	// Saturation: queued callers decay the penalty; the idle degraded chip
	// absorbs the overflow with a full grant.
	f.queued = 24
	pl = f.placeLocked(spec, 4, nil)
	if pl == nil || pl.chip.spec.Name != "degraded" {
		t.Fatalf("saturated queue: placed on %v, want degraded", placedName(pl))
	}
	if pl.mixers != 4 {
		t.Fatalf("degraded grant = %d mixers, want 4", pl.mixers)
	}
	unplaceLocked(pl)
	f.mu.Unlock()
}

func placedName(pl *placement) string {
	if pl == nil {
		return "<none>"
	}
	return pl.chip.spec.Name
}

// unplaceLocked reverses a placeLocked reservation for test reuse.
func unplaceLocked(pl *placement) {
	if pl == nil {
		return
	}
	pl.chip.usedMixers -= pl.mixers
	pl.chip.usedStorage -= pl.storage
	pl.chip.inflight--
}
