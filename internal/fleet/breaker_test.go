package fleet

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := breaker{threshold: 3, cooldown: 100 * time.Millisecond, maxCooldown: time.Second}
	now := time.Unix(0, 0)
	if !b.canAdmit(now) {
		t.Fatal("fresh breaker must admit")
	}
	if b.failure(now) {
		t.Fatal("first failure must not open")
	}
	if b.failure(now) {
		t.Fatal("second failure must not open")
	}
	if !b.failure(now) {
		t.Fatal("third failure must open")
	}
	if b.state != breakerOpen {
		t.Fatalf("state = %v, want open", b.state)
	}
	if b.canAdmit(now.Add(50 * time.Millisecond)) {
		t.Fatal("open breaker admitted inside cooldown")
	}
	if !b.canAdmit(now.Add(100 * time.Millisecond)) {
		t.Fatal("open breaker must admit after cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := breaker{threshold: 1, cooldown: 100 * time.Millisecond, maxCooldown: time.Second}
	now := time.Unix(0, 0)
	b.failure(now)
	after := now.Add(150 * time.Millisecond)
	b.admit(after)
	if b.state != breakerHalfOpen || !b.probing {
		t.Fatalf("admit after cooldown must half-open with probe; state=%v probing=%v", b.state, b.probing)
	}
	if b.canAdmit(after) {
		t.Fatal("half-open breaker with a probe in flight must not admit a second assay")
	}
	// Successful probe closes.
	b.success()
	if b.state != breakerClosed || b.opens != 0 {
		t.Fatalf("success must close and reset opens; state=%v opens=%d", b.state, b.opens)
	}
}

func TestBreakerExponentialCooldownCapped(t *testing.T) {
	b := breaker{threshold: 1, cooldown: 100 * time.Millisecond, maxCooldown: 400 * time.Millisecond}
	now := time.Unix(0, 0)
	// First open: 100ms.
	b.failure(now)
	if got := b.until.Sub(now); got != 100*time.Millisecond {
		t.Fatalf("open 1 cooldown = %v, want 100ms", got)
	}
	// Failed probe: 200ms.
	now = b.until
	b.admit(now)
	b.failure(now)
	if got := b.until.Sub(now); got != 200*time.Millisecond {
		t.Fatalf("open 2 cooldown = %v, want 200ms", got)
	}
	// Two more failed probes: 400ms then still 400ms (capped).
	for i, want := range []time.Duration{400 * time.Millisecond, 400 * time.Millisecond} {
		now = b.until
		b.admit(now)
		b.failure(now)
		if got := b.until.Sub(now); got != want {
			t.Fatalf("open %d cooldown = %v, want %v", i+3, got, want)
		}
	}
	if b.recoversBy() != b.until {
		t.Fatal("recoversBy must report the open deadline")
	}
}
