package fleet

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := breaker{threshold: 3, cooldown: 100 * time.Millisecond, maxCooldown: time.Second}
	now := time.Unix(0, 0)
	if !b.canAdmit(now) {
		t.Fatal("fresh breaker must admit")
	}
	if b.failure(now) {
		t.Fatal("first failure must not open")
	}
	if b.failure(now) {
		t.Fatal("second failure must not open")
	}
	if !b.failure(now) {
		t.Fatal("third failure must open")
	}
	if b.state != breakerOpen {
		t.Fatalf("state = %v, want open", b.state)
	}
	if b.canAdmit(now.Add(50 * time.Millisecond)) {
		t.Fatal("open breaker admitted inside cooldown")
	}
	if !b.canAdmit(now.Add(100 * time.Millisecond)) {
		t.Fatal("open breaker must admit after cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := breaker{threshold: 1, cooldown: 100 * time.Millisecond, maxCooldown: time.Second}
	now := time.Unix(0, 0)
	b.failure(now)
	after := now.Add(150 * time.Millisecond)
	b.admit(after)
	if b.state != breakerHalfOpen || !b.probing {
		t.Fatalf("admit after cooldown must half-open with probe; state=%v probing=%v", b.state, b.probing)
	}
	if b.canAdmit(after) {
		t.Fatal("half-open breaker with a probe in flight must not admit a second assay")
	}
	// Successful probe closes.
	b.success()
	if b.state != breakerClosed || b.opens != 0 {
		t.Fatalf("success must close and reset opens; state=%v opens=%d", b.state, b.opens)
	}
}

func TestBreakerExponentialCooldownCapped(t *testing.T) {
	b := breaker{threshold: 1, cooldown: 100 * time.Millisecond, maxCooldown: 400 * time.Millisecond}
	now := time.Unix(0, 0)
	// First open: 100ms.
	b.failure(now)
	if got := b.until.Sub(now); got != 100*time.Millisecond {
		t.Fatalf("open 1 cooldown = %v, want 100ms", got)
	}
	// Failed probe: 200ms.
	now = b.until
	b.admit(now)
	b.failure(now)
	if got := b.until.Sub(now); got != 200*time.Millisecond {
		t.Fatalf("open 2 cooldown = %v, want 200ms", got)
	}
	// Two more failed probes: 400ms then still 400ms (capped).
	for i, want := range []time.Duration{400 * time.Millisecond, 400 * time.Millisecond} {
		now = b.until
		b.admit(now)
		b.failure(now)
		if got := b.until.Sub(now); got != want {
			t.Fatalf("open %d cooldown = %v, want %v", i+3, got, want)
		}
	}
	if b.recoversBy() != b.until {
		t.Fatal("recoversBy must report the open deadline")
	}
}

// TestExportedBreaker covers the self-locking Breaker the cluster tier
// guards peers with: threshold opens, cooldown half-opens exactly one probe,
// probe outcome closes or re-opens.
func TestExportedBreaker(t *testing.T) {
	b := NewBreaker(2, 10*time.Millisecond, 40*time.Millisecond)
	if !b.Allow() {
		t.Fatal("fresh breaker rejects")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("state %q, want closed", b.State())
	}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		if opened := b.Failure(); opened != (i == 1) {
			t.Fatalf("failure %d opened=%v", i, opened)
		}
	}
	if b.State() != "open" || b.Allow() {
		t.Fatalf("breaker not open after threshold (state %q)", b.State())
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("expired breaker rejects its half-open probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	b.Success()
}
