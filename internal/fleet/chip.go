package fleet

import (
	"fmt"

	"repro/internal/contam"
)

// ChipSpec describes one simulated chip of the farm: its geometry (mixer
// modules and storage cells) and its degradation profile. Heterogeneous
// fleets are the norm — see DefaultChips.
type ChipSpec struct {
	Name string
	// Mixers is the number of mixer modules the chip was built with.
	Mixers int
	// Storage is the number of storage cells available for parked droplets.
	Storage int
	// BaseFaultRate is the per-event fault probability of the pristine chip
	// (fed to the deterministic injector of internal/faults).
	BaseFaultRate float64
	// WearPerAssay is added to the fault rate after every completed assay —
	// Poddar et al.'s progressive degradation, not a clean fail-stop.
	WearPerAssay float64
}

// chipState classifies a chip's health for readiness reporting.
const (
	chipHealthy  = "healthy"
	chipDegraded = "degraded"
	chipOpen     = "breaker-open"
	chipHalfOpen = "breaker-half-open"
	chipDead     = "dead"
)

// degradedFaultRate is the live fault rate above which a chip reports
// "degraded" even while its breaker is closed.
const degradedFaultRate = 0.02

// Chip is the live state of one chip. All mutable fields are guarded by
// the fleet mutex.
type Chip struct {
	spec ChipSpec

	faultRate   float64
	deadMixers  int
	usedMixers  int
	usedStorage int
	inflight    int

	tracker *contam.ResidueTracker

	assaysRun int
	failures  int
	seq       int64 // per-chip assay ordinal, seeds the fault injector

	breaker breaker
}

// usableMixers returns the mixers not dead and not reserved.
func (c *Chip) usableMixers() int { return c.spec.Mixers - c.deadMixers - c.usedMixers }

// dead reports a chip with no working mixers at all.
func (c *Chip) dead() bool { return c.spec.Mixers-c.deadMixers <= 0 }

// state classifies the chip for health reporting.
func (c *Chip) state() string {
	switch {
	case c.dead():
		return chipDead
	case c.breaker.state == breakerOpen:
		return chipOpen
	case c.breaker.state == breakerHalfOpen:
		return chipHalfOpen
	case c.faultRate > degradedFaultRate || c.deadMixers > 0:
		return chipDegraded
	default:
		return chipHealthy
	}
}

// ChipHealth is the JSON-friendly health snapshot of one chip, exported via
// the readiness endpoint so rolling restarts and load balancers can see the
// fleet's live state.
type ChipHealth struct {
	Name         string  `json:"name"`
	State        string  `json:"state"`
	FaultRate    float64 `json:"fault_rate"`
	Mixers       int     `json:"mixers"`
	DeadMixers   int     `json:"dead_mixers,omitempty"`
	Storage      int     `json:"storage"`
	Inflight     int     `json:"inflight"`
	AssaysRun    int     `json:"assays_run"`
	Failures     int     `json:"failures,omitempty"`
	Washes       int     `json:"washes,omitempty"`
	BreakerOpens int     `json:"breaker_opens,omitempty"`
}

// DefaultChips builds a heterogeneous pristine fleet of n chips cycling
// through four geometries (the paper's PCR-scale module counts up to a
// larger prep chip), named chip-0..chip-n-1.
func DefaultChips(n int) []ChipSpec {
	geoms := []struct{ mixers, storage int }{
		{4, 8}, {3, 6}, {5, 10}, {2, 4},
	}
	specs := make([]ChipSpec, n)
	for i := range specs {
		g := geoms[i%len(geoms)]
		specs[i] = ChipSpec{
			Name:    fmt.Sprintf("chip-%d", i),
			Mixers:  g.mixers,
			Storage: g.storage,
		}
	}
	return specs
}
