// Package fleet multiplexes queued assays over a farm of simulated DMF
// chips — the production shape of the DAC 2014 streaming engine, where
// "one pristine chip per request" becomes N heterogeneous chips that
// degrade progressively (fault rates ramp with wear, mixers die) rather
// than failing cleanly.
//
// The scheduler bin-packs assays onto chips by mixer and storage demand,
// subject to the cross-assay contamination constraint of internal/contam
// (droplet streams of different composition never share a chip
// concurrently; following a different composition charges a wash pass).
// Execution closes the loop through internal/runtime with each chip's live
// fault rate fed to the deterministic injector of internal/faults, so a
// degrading chip really does corrupt splits and lose droplets — and the
// runtime's recovery ladder, the audit ledger and this scheduler's
// reassignment logic all see it.
//
// Failure handling is never silent: an assay that hits ErrUnrecoverable
// (or an audit violation) on a chip trips that chip's circuit breaker
// bookkeeping and is reassigned to another chip under capped exponential
// backoff with jitter; a breaker that sees enough consecutive failures
// opens and stops admitting until a cooldown expires, after which a single
// half-open probe decides its fate. When every chip is open or dead, or
// the admission queue is full, Run fails fast with a typed error the
// server maps to 429/503 + Retry-After.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cancel"
	"repro/internal/chip"
	"repro/internal/contam"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/forest"
	"repro/internal/obs"
	"repro/internal/ratio"
	"repro/internal/runtime"
	"repro/internal/stream"
)

// Typed fleet errors.
var (
	// ErrSaturated reports a full admission queue — the caller should shed
	// load (HTTP 429 + Retry-After).
	ErrSaturated = errors.New("fleet: admission queue full")
	// ErrNoChips reports a fleet with no chip that could ever admit work
	// again (every chip dead). HTTP 503.
	ErrNoChips = errors.New("fleet: no usable chips")
	// ErrAssayFailed reports an assay that failed on every attempted chip
	// within the attempt budget; it wraps the last chip's error. HTTP 502.
	ErrAssayFailed = errors.New("fleet: assay failed on every attempted chip")
)

// AssaySpec is one queued assay: a target mixture, its droplet demand and
// its resource envelope.
type AssaySpec struct {
	Target    ratio.Ratio
	Algorithm core.Algorithm
	Scheduler stream.Scheduler
	// Mixers requests an on-chip mixer count (0 = Mlb of the target's MM
	// tree). The grant is clamped to what the assigned chip has free.
	Mixers int
	// Storage is the storage budget q' (0 = unlimited planning; the fleet
	// still reserves a default share of the chip's storage cells).
	Storage int
	// Demand is the number of target droplets.
	Demand int
	// Class is the contamination class; empty defaults to the target ratio
	// string (assays of one composition may share a chip, others may not).
	Class string
}

func (a *AssaySpec) class() string {
	if a.Class != "" {
		return a.Class
	}
	return a.Target.String()
}

// Result is the outcome of one fleet-scheduled assay.
type Result struct {
	// Chip is the chip that completed the assay.
	Chip string
	// Attempts is the number of chips tried (1 = first placement worked).
	Attempts int
	// Reassignments counts failed placements (Attempts - 1).
	Reassignments int
	// Washed reports that a wash pass preceded the assay (residue of a
	// different composition); WashCycles is its cycle cost.
	Washed     bool
	WashCycles int
	// MixersGranted is the mixer share the chip actually gave the assay.
	MixersGranted int
	// Report is the closed-loop execution report (audit included).
	Report *runtime.Report
}

// Config tunes the fleet. Zero values select defaults.
type Config struct {
	// Chips describes the farm; empty defaults to DefaultChips(4).
	Chips []ChipSpec
	// MaxAttempts bounds the chips tried per assay (default 3).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the capped exponential backoff between
	// reassignments (defaults 10ms / 500ms); jitter adds up to 50%.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a chip's
	// breaker (default 3); BreakerCooldown its first cooldown (default
	// 250ms, doubling per re-open up to 16x).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxQueue bounds assays waiting for a placement (default 256).
	MaxQueue int
	// StorageDemand is the storage-cell reservation for assays that plan
	// with unlimited storage (default 4).
	StorageDemand int
	// WashCycles is the cycle cost charged for a wash pass (default 4).
	WashCycles int
	// Policy is the closed-loop execution policy; its RecoveryBudget
	// defaults to 256 extra cycles per pass so heavily degraded chips fail
	// (and trip breakers) instead of burning unbounded recovery work.
	Policy runtime.Policy
	// Seed feeds per-assay fault-injector seeds and the backoff jitter.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Chips) == 0 {
		c.Chips = DefaultChips(4)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.StorageDemand <= 0 {
		c.StorageDemand = 4
	}
	if c.WashCycles <= 0 {
		c.WashCycles = 4
	}
	if c.Policy.RecoveryBudget == 0 {
		c.Policy.RecoveryBudget = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fleet schedules assays over the chip farm. Safe for concurrent use.
type Fleet struct {
	cfg   Config
	chips []*Chip

	mu     sync.Mutex
	queued int
	rng    *rand.Rand

	// now/sleep are stubbed by tests.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a fleet from the configuration.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		now: time.Now,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return cancel.Check(ctx)
			}
		},
	}
	for _, spec := range cfg.Chips {
		f.chips = append(f.chips, &Chip{
			spec:      spec,
			faultRate: spec.BaseFaultRate,
			tracker:   contam.NewResidueTracker(),
			breaker: breaker{
				threshold:   cfg.BreakerThreshold,
				cooldown:    cfg.BreakerCooldown,
				maxCooldown: 16 * cfg.BreakerCooldown,
			},
		})
	}
	return f
}

// Size returns the number of chips in the fleet.
func (f *Fleet) Size() int { return len(f.chips) }

// placement is a reserved slot on a chip, snapshotting everything execute
// needs so it can run without the fleet lock.
type placement struct {
	chip       *Chip
	mixers     int // granted mixer share
	storage    int // reserved storage cells
	faultRate  float64
	seed       int64
	washNeeded bool
}

// Run schedules, places and executes one assay, reassigning it across
// chips (with capped exponential backoff + jitter) when a chip fails it
// unrecoverably. The returned Result carries the closed-loop execution
// report of the successful attempt.
func (f *Fleet) Run(ctx context.Context, a AssaySpec) (*Result, error) {
	if a.Demand <= 0 {
		return nil, fmt.Errorf("fleet: %w: %d", forest.ErrBadDemand, a.Demand)
	}
	// Resolve the assay's mixer demand (Mlb when unspecified) via a probe
	// engine; base graphs and Mlb are memoised process-wide, so this costs
	// a cache hit steady-state.
	probe, err := core.New(core.Config{
		Target: a.Target, Algorithm: a.Algorithm, Scheduler: a.Scheduler,
		Mixers: a.Mixers, Storage: a.Storage,
	})
	if err != nil {
		return nil, err
	}
	need := probe.Mixers()

	done := obs.StartTimer("fleet.assay_ms")
	defer done()
	obs.Inc("fleet.assays")

	res := &Result{}
	excluded := map[*Chip]bool{}
	var lastErr error
	for attempt := 0; attempt < f.cfg.MaxAttempts; attempt++ {
		pl, err := f.acquire(ctx, &a, need, excluded)
		if err != nil {
			obs.Inc("fleet.assays_failed")
			return nil, err
		}
		res.Attempts = attempt + 1
		rep, runErr := f.execute(ctx, &a, pl)
		f.release(&a, pl, runErr)
		if runErr == nil {
			res.Chip = pl.chip.spec.Name
			res.MixersGranted = pl.mixers
			res.Washed = pl.washNeeded
			if pl.washNeeded {
				res.WashCycles = f.cfg.WashCycles
			}
			res.Report = rep
			return res, nil
		}
		if !isChipFault(runErr) {
			// The client asked for something impossible (or hung up); no
			// chip is to blame and no other chip would do better.
			obs.Inc("fleet.assays_failed")
			return nil, runErr
		}
		lastErr = runErr
		res.Reassignments++
		obs.Inc("fleet.reassignments")
		excluded[pl.chip] = true
		if len(excluded) >= len(f.chips) {
			// Every chip has failed this assay once; let later attempts
			// revisit them (their breakers still gate admission).
			excluded = map[*Chip]bool{}
		}
		if attempt+1 < f.cfg.MaxAttempts {
			if err := f.backoff(ctx, attempt); err != nil {
				obs.Inc("fleet.assays_failed")
				return nil, err
			}
		}
	}
	obs.Inc("fleet.assays_failed")
	return nil, fmt.Errorf("%w (%d attempts): %w", ErrAssayFailed, f.cfg.MaxAttempts, lastErr)
}

// backoff sleeps the capped exponential backoff with jitter for the given
// attempt ordinal.
func (f *Fleet) backoff(ctx context.Context, attempt int) error {
	d := f.cfg.BaseBackoff << attempt
	if d > f.cfg.MaxBackoff {
		d = f.cfg.MaxBackoff
	}
	f.mu.Lock()
	jitter := time.Duration(f.rng.Int63n(int64(d)/2 + 1))
	f.mu.Unlock()
	obs.Inc("fleet.backoff_sleeps")
	obs.Observe("fleet.backoff_ms", float64((d+jitter).Microseconds())/1000)
	return f.sleep(ctx, d+jitter)
}

// acquire blocks until the assay is placed on a chip, the queue overflows
// (ErrSaturated), the fleet is hopeless (ErrNoChips) or ctx ends. The
// returned placement has its resources reserved.
func (f *Fleet) acquire(ctx context.Context, a *AssaySpec, need int, excluded map[*Chip]bool) (*placement, error) {
	const pollEvery = 2 * time.Millisecond
	t0 := time.Now()
	joined := false
	defer func() {
		if joined {
			f.mu.Lock()
			f.queued--
			f.mu.Unlock()
		}
		obs.Observe("fleet.queue_wait_ms", float64(time.Since(t0).Microseconds())/1000)
	}()
	for {
		f.mu.Lock()
		if pl := f.placeLocked(a, need, excluded); pl != nil {
			f.mu.Unlock()
			return pl, nil
		}
		if f.allDeadLocked() {
			f.mu.Unlock()
			return nil, ErrNoChips
		}
		if !joined {
			if f.queued >= f.cfg.MaxQueue {
				f.mu.Unlock()
				obs.Inc("fleet.saturated")
				return nil, ErrSaturated
			}
			f.queued++
			joined = true
			obs.Inc("fleet.queued")
		}
		f.mu.Unlock()
		if err := f.sleep(ctx, pollEvery); err != nil {
			return nil, err
		}
	}
}

// placeLocked picks the best admissible chip and reserves it, or returns
// nil when nothing can take the assay right now.
func (f *Fleet) placeLocked(a *AssaySpec, need int, excluded map[*Chip]bool) *placement {
	now := f.now()
	class := a.class()
	storage := a.Storage
	if storage <= 0 {
		storage = f.cfg.StorageDemand
	}
	var best *Chip
	var bestScore float64
	for _, c := range f.chips {
		if excluded[c] || c.dead() || !c.breaker.canAdmit(now) {
			continue
		}
		avail := c.usableMixers()
		if avail < 1 || c.usedStorage+storage > c.spec.Storage {
			continue
		}
		if !c.tracker.CanAdmit(class) {
			continue
		}
		grant := need
		if grant > avail {
			grant = avail
		}
		// Bin-packing score: best fit on mixer slack (leave the big chips
		// free for demanding assays), avoid washes, avoid degraded chips,
		// spread load.
		score := -float64(avail-grant) * 0.5
		if c.tracker.Residue() == "" || c.tracker.Residue() == class {
			score += 10
		}
		// The degradation penalty is load-aware: sub-saturation the full
		// −50·faultRate routes around degraded chips entirely (E11's
		// route-around finding), but once callers are queued behind
		// placement, shunning an admissible degraded chip only deepens the
		// queue — so the penalty decays with admission pressure and the
		// overflow spills onto degraded chips, which either absorb it or
		// fail fast into their breakers.
		pressure := float64(f.queued) / float64(len(f.chips))
		score -= c.faultRate * 50 / (1 + pressure)
		score -= float64(c.inflight)
		if best == nil || score > bestScore {
			best, bestScore = c, score
		}
	}
	if best == nil {
		return nil
	}
	if f.queued > 0 && best.faultRate > degradedFaultRate {
		obs.Inc("fleet.overflow_admissions")
	}
	grant := need
	if avail := best.usableMixers(); grant > avail {
		grant = avail
	}
	best.breaker.admit(now)
	washNeeded := best.tracker.Admit(class)
	best.usedMixers += grant
	best.usedStorage += storage
	best.inflight++
	best.seq++
	if washNeeded {
		obs.Inc("fleet.washes")
	}
	return &placement{
		chip:       best,
		mixers:     grant,
		storage:    storage,
		faultRate:  best.faultRate,
		seed:       f.cfg.Seed + int64(1e9)*best.seq + int64(best.assaysRun),
		washNeeded: washNeeded,
	}
}

// allDeadLocked reports a fleet where no chip will ever admit again.
func (f *Fleet) allDeadLocked() bool {
	for _, c := range f.chips {
		if !c.dead() {
			return false
		}
	}
	return true
}

// execute plans and cyberphysically runs the assay on the placed chip,
// outside the fleet lock.
func (f *Fleet) execute(ctx context.Context, a *AssaySpec, pl *placement) (*runtime.Report, error) {
	eng, err := core.New(core.Config{
		Target: a.Target, Algorithm: a.Algorithm, Scheduler: a.Scheduler,
		Mixers: pl.mixers, Storage: a.Storage,
	})
	if err != nil {
		return nil, err
	}
	b, err := eng.RequestCtx(ctx, a.Demand)
	if err != nil {
		return nil, err
	}
	cells := pl.storage
	if cells < 8 {
		cells = 8
	}
	layout, err := chip.AutoLayout(a.Target.N(), eng.Mixers(), cells)
	if err != nil {
		return nil, err
	}
	var inj *faults.Injector
	if pl.faultRate > 0 {
		rate := pl.faultRate
		if rate >= 0.99 {
			rate = 0.99
		}
		inj, err = faults.New(faults.Rate(pl.seed, rate))
		if err != nil {
			return nil, err
		}
	}
	return eng.ExecuteBatchCtx(ctx, b, layout, inj, f.cfg.Policy)
}

// release returns the placement's resources and updates breaker, wear and
// failure bookkeeping from the run's outcome.
func (f *Fleet) release(a *AssaySpec, pl *placement, runErr error) {
	c := pl.chip
	f.mu.Lock()
	defer f.mu.Unlock()
	c.usedMixers -= pl.mixers
	c.usedStorage -= pl.storage
	c.inflight--
	c.tracker.Release(a.class())
	switch {
	case runErr == nil:
		c.assaysRun++
		c.breaker.success()
		// Progressive wear: every completed assay leaves the chip a little
		// worse. (Failed assays count as failures, not wear.)
		c.faultRate += c.spec.WearPerAssay
		if c.faultRate > 0.95 {
			c.faultRate = 0.95
		}
	case isChipFault(runErr):
		c.failures++
		if c.breaker.failure(f.now()) {
			obs.Inc("fleet.breaker_opens")
		}
	}
}

// isChipFault separates "this chip failed the assay" (retry elsewhere,
// charge the breaker) from client errors and cancellations (no chip is to
// blame).
func isChipFault(err error) bool {
	switch {
	case errors.Is(err, cancel.ErrCanceled),
		errors.Is(err, core.ErrBadConfig),
		errors.Is(err, core.ErrNoTarget),
		errors.Is(err, forest.ErrBadDemand),
		errors.Is(err, stream.ErrStorage):
		return false
	default:
		return true
	}
}

// DegradeChip forces degradation onto a named chip: a new fault rate
// and/or additional dead mixers. Used by chaos/bench harnesses to model
// chip churn, and by operators to quarantine hardware.
func (f *Fleet) DegradeChip(name string, faultRate float64, killMixers int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.chips {
		if c.spec.Name != name {
			continue
		}
		if faultRate >= 0 {
			c.faultRate = faultRate
		}
		c.deadMixers += killMixers
		if c.deadMixers > c.spec.Mixers {
			c.deadMixers = c.spec.Mixers
		}
		obs.Inc("fleet.degraded")
		return nil
	}
	return fmt.Errorf("fleet: no chip named %q", name)
}

// Health snapshots every chip's live state, in fleet order.
func (f *Fleet) Health() []ChipHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ChipHealth, len(f.chips))
	for i, c := range f.chips {
		out[i] = ChipHealth{
			Name:         c.spec.Name,
			State:        c.state(),
			FaultRate:    c.faultRate,
			Mixers:       c.spec.Mixers,
			DeadMixers:   c.deadMixers,
			Storage:      c.spec.Storage,
			Inflight:     c.inflight,
			AssaysRun:    c.assaysRun,
			Failures:     c.failures,
			Washes:       c.tracker.Washes(),
			BreakerOpens: c.breaker.opens,
		}
	}
	return out
}

// Available reports whether any chip currently admits new work (used by
// the readiness endpoint: an all-open/all-dead fleet is not ready).
func (f *Fleet) Available() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	for _, c := range f.chips {
		if !c.dead() && c.breaker.canAdmit(now) {
			return true
		}
	}
	return false
}

// Queued returns the number of assays waiting for a placement.
func (f *Fleet) Queued() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queued
}
