// Package mtcs reconstructs the MTCS mixing algorithm of Kumar et al.
// ("Efficient Mixture Preparation on Digital Microfluidic Biochips", IEEE
// DDECS 2013), the reagent-efficient base mixing algorithm of the DAC 2014
// droplet-streaming paper.
//
// The DAC 2014 paper uses MTCS as a black box characterised by lower input
// usage than MM (Table 2: e.g. 15 vs. 17 droplets per pass for the PCR
// master-mix at L=256). This package reconstructs that behaviour as "MM with
// common-subtree sharing":
//
//  1. an MM-style bit-decomposition tree shape is planned with the pool at
//     every level sorted by CF vector, so identical sub-mixtures become
//     siblings and recur as identical subtrees;
//  2. the shape is instantiated top-down with memoisation: when a needed
//     sub-mixture was already produced by an earlier mix whose second output
//     droplet is still unconsumed, that spare droplet is used instead of
//     rebuilding the subtree.
//
// Both split outputs of a shared mix are consumed in-pass, so the result is
// a DAG rather than a tree, with strictly fewer leaves and mix-splits than
// MM whenever the ratio contains repeated sub-mixtures (e.g. several fluids
// with equal parts). See DESIGN.md §4 for the substitution rationale.
package mtcs

import (
	"fmt"
	"sort"

	"repro/internal/mixgraph"
	"repro/internal/ratio"
)

// Name is the algorithm identifier used across the repository.
const Name = "MTCS"

// shape is a planned (not yet instantiated) mixing-tree node.
type shape struct {
	fluid    int // >= 0 for a leaf
	children [2]*shape
	vec      ratio.Vector
	key      string
}

// Build constructs the MTCS mixing DAG for the target ratio.
func Build(target ratio.Ratio) (*mixgraph.Graph, error) {
	r := target.Normalized()
	d := r.Depth()
	if r.N() < 2 || d == 0 {
		return nil, fmt.Errorf("mtcs: ratio %v needs no mixing", target)
	}
	root, err := planShape(r)
	if err != nil {
		return nil, err
	}

	b := mixgraph.NewBuilder(target)
	avail := make(map[string][]*mixgraph.Node)
	var need func(s *shape, isRoot bool) *mixgraph.Node
	need = func(s *shape, isRoot bool) *mixgraph.Node {
		if !isRoot {
			if free := avail[s.key]; len(free) > 0 {
				n := free[len(free)-1]
				avail[s.key] = free[:len(free)-1]
				return n
			}
		}
		if s.fluid >= 0 {
			return b.Leaf(s.fluid)
		}
		l := need(s.children[0], false)
		rn := need(s.children[1], false)
		m := b.Mix(l, rn)
		if !isRoot {
			// The second split output is spare: offer it for sharing.
			avail[s.key] = append(avail[s.key], m)
		}
		return m
	}
	rootNode := need(root, true)
	return b.Build(rootNode, Name)
}

// planShape builds the MM bit-decomposition shape with vector-sorted pools,
// maximising adjacent identical sub-mixtures.
func planShape(r ratio.Ratio) (*shape, error) {
	d := r.Depth()
	var carry []*shape
	for level := 1; level <= d; level++ {
		bit := uint(level - 1)
		pool := append([]*shape(nil), carry...)
		for i := 0; i < r.N(); i++ {
			if r.Part(i)>>bit&1 == 1 {
				v := ratio.Unit(i, r.N())
				pool = append(pool, &shape{fluid: i, vec: v, key: v.Key()})
			}
		}
		if len(pool)%2 != 0 {
			return nil, fmt.Errorf("mtcs: internal error: odd pool (%d) at level %d for %v", len(pool), level, r)
		}
		// Sort by vector key so identical droplets pair with each other and
		// identical pairs recur as identical subtrees.
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].key < pool[j].key })
		carry = make([]*shape, 0, len(pool)/2)
		for i := 0; i+1 < len(pool); i += 2 {
			v := ratio.Mix(pool[i].vec, pool[i+1].vec)
			carry = append(carry, &shape{
				fluid:    -1,
				children: [2]*shape{pool[i], pool[i+1]},
				vec:      v,
				key:      v.Key(),
			})
		}
	}
	if len(carry) != 1 {
		return nil, fmt.Errorf("mtcs: internal error: %d droplets remain for %v", len(carry), r)
	}
	return carry[0], nil
}
