package mtcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/minmix"
	"repro/internal/ratio"
)

func TestBuildValidates(t *testing.T) {
	for _, s := range []string{
		"2:1:1:1:1:1:9",
		"26:21:2:2:3:3:199",
		"128:123:5",
		"25:5:5:5:5:13:13:25:1:159",
		"9:17:26:9:195",
		"57:28:6:6:6:3:150",
		"1:3",
		"1:1",
	} {
		g, err := Build(ratio.MustParse(s))
		if err != nil {
			t.Fatalf("Build(%s): %v", s, err)
		}
		st := g.Stats()
		// Droplet conservation holds regardless of sharing: every mix is
		// 2-in-2-out, so inputs = targets (2) + waste.
		if st.InputTotal != st.Waste+2 {
			t.Errorf("%s: conservation violated: I=%d W=%d shared=%d",
				s, st.InputTotal, st.Waste, st.Shared)
		}
	}
}

func TestSharingSavesInputsEx1(t *testing.T) {
	// Table 2, Ex.1 (PCR at L=256): MM uses 17 droplets per pass, MTCS 15
	// (272 vs 240 over 16 passes). The paired equal fluids x3=x4=2 and
	// x5=x6=3 recur at two bit positions, enabling one shared sub-mixture.
	r := ratio.MustParse("26:21:2:2:3:3:199")
	g, err := Build(r)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := g.Stats()
	if mm := minmix.InputCount(r); s.InputTotal >= mm {
		t.Errorf("MTCS I=%d, want < MM I=%d", s.InputTotal, mm)
	}
	if s.Shared == 0 {
		t.Error("expected at least one shared sub-mixture")
	}
	if s.InputTotal != 15 {
		t.Logf("note: MTCS I=%d (paper's MTCS reports 15); reconstruction, shape-level match", s.InputTotal)
	}
}

func TestNeverWorseThanMM(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(11)
		parts := make([]int64, n)
		for i := range parts {
			parts[i] = 1
		}
		for rest := 32 - n; rest > 0; rest-- {
			parts[rng.Intn(n)]++
		}
		r, err := ratio.New(parts...)
		if err != nil {
			return false
		}
		g, err := Build(r)
		if err != nil {
			return false
		}
		return g.Stats().InputTotal <= minmix.InputCount(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualPartsShareAggressively(t *testing.T) {
	// 1:1:1:1 (d=2): MM needs 4 leaves & 3 mixes; MTCS shares the two
	// identical half-mixtures only if they are truly identical — here the
	// two level-1 pairs differ ((x1,x2) vs (x3,x4)), so no sharing. But
	// 4:4:4:4 normalizes to 1:1:1:1, same result. A genuinely sharable case:
	// 3:3:1:1 (d=3): x1,x2 appear at bits 0 and 1, so the pair (x1,x2)
	// recurs and is shared.
	r := ratio.MustNew(3, 3, 1, 1)
	g, err := Build(r)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := g.Stats()
	if s.Shared == 0 {
		t.Errorf("3:3:1:1: expected sharing, got I=%d shared=%d", s.InputTotal, s.Shared)
	}
	if mm := minmix.InputCount(r); s.InputTotal >= mm {
		t.Errorf("3:3:1:1: MTCS I=%d, want < MM I=%d", s.InputTotal, mm)
	}
}

func TestDilutionSameAsMM(t *testing.T) {
	// With no repeated sub-mixtures MTCS degenerates to MM.
	r := ratio.MustNew(1, 3)
	g, err := Build(r)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := g.Stats()
	if s.InputTotal != minmix.InputCount(r) || s.Shared != 0 {
		t.Errorf("I=%d shared=%d, want I=%d shared=0", s.InputTotal, s.Shared, minmix.InputCount(r))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(ratio.MustNew(16)); err == nil {
		t.Error("single-fluid ratio accepted")
	}
}
