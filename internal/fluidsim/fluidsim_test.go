package fluidsim

import (
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/exec"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/ratio"
	"repro/internal/sched"
)

func pcrPlan(t *testing.T, demand int) (*exec.Plan, *chip.Layout, *sched.Schedule) {
	t.Helper()
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatalf("minmix.Build: %v", err)
	}
	f, err := forest.Build(g, demand)
	if err != nil {
		t.Fatalf("forest.Build: %v", err)
	}
	s, err := sched.SRS(f, 3)
	if err != nil {
		t.Fatalf("SRS: %v", err)
	}
	l := chip.PCRLayout()
	plan, err := exec.Execute(s, l)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return plan, l, s
}

func TestReplayMatchesPlanCost(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 20)
	res, err := Replay(plan, layout)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Total != plan.TotalCost {
		t.Errorf("replayed %d actuations, plan says %d", res.Total, plan.TotalCost)
	}
	if res.Moves != len(plan.Moves) {
		t.Errorf("replayed %d moves, plan has %d", res.Moves, len(plan.Moves))
	}
	if res.MicroSteps != res.Total {
		t.Errorf("micro-steps %d != total %d", res.MicroSteps, res.Total)
	}
}

func TestActuationsOnFreeCellsOnly(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 16)
	res, err := Replay(plan, layout)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	blocked := layout.Blocked()
	for p, n := range res.Actuations {
		if blocked(p) {
			t.Errorf("blocked electrode (%d,%d) actuated %d times", p.X, p.Y, n)
		}
		if n <= 0 {
			t.Errorf("non-positive count at (%d,%d)", p.X, p.Y)
		}
	}
}

func TestHottestElectrode(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 20)
	res, _ := Replay(plan, layout)
	if res.MaxActuations <= 0 {
		t.Fatal("no hottest electrode found")
	}
	if got := res.Actuations[res.Hottest]; got != res.MaxActuations {
		t.Errorf("hottest count %d != recorded %d", got, res.MaxActuations)
	}
	for _, n := range res.Actuations {
		if n > res.MaxActuations {
			t.Errorf("count %d exceeds recorded max %d", n, res.MaxActuations)
		}
	}
}

// TestStreamingReducesWear carries the §5 reliability argument to the
// per-electrode level: the streaming engine wears the hottest electrode
// far less than ⌈D/2⌉ repeated baseline passes.
func TestStreamingReducesWear(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 20)
	engine, err := Replay(plan, layout)
	if err != nil {
		t.Fatalf("Replay(engine): %v", err)
	}
	g, _ := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	oms, _ := sched.OMS(g, 3)
	basePlan, err := exec.Execute(oms, layout)
	if err != nil {
		t.Fatalf("Execute(base): %v", err)
	}
	base, err := Replay(basePlan, layout)
	if err != nil {
		t.Fatalf("Replay(base): %v", err)
	}
	repeatedMax := 10 * base.MaxActuations
	if engine.MaxActuations >= repeatedMax {
		t.Errorf("hottest electrode: engine %d, repeated %d — engine should wear less",
			engine.MaxActuations, repeatedMax)
	}
	t.Logf("hottest electrode wear: engine %d vs repeated %d (%.2fx)",
		engine.MaxActuations, repeatedMax, float64(repeatedMax)/float64(engine.MaxActuations))
}

func TestHeatmap(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 16)
	res, _ := Replay(plan, layout)
	hm := res.Heatmap(layout)
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != layout.Height {
		t.Fatalf("heatmap has %d rows, want %d", len(lines), layout.Height)
	}
	if !strings.Contains(hm, "#") {
		t.Error("heatmap missing module cells")
	}
	hasDigit := false
	for _, c := range hm {
		if c >= '1' && c <= '9' || c >= 'a' && c <= 'z' || c == '+' {
			hasDigit = true
			break
		}
	}
	if !hasDigit {
		t.Error("heatmap shows no wear")
	}
}

func TestHistogramSorted(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 16)
	res, _ := Replay(plan, layout)
	h := res.Histogram()
	if len(h) == 0 {
		t.Fatal("empty histogram")
	}
	sum := 0
	for i, n := range h {
		sum += n
		if i > 0 && n > h[i-1] {
			t.Fatal("histogram not descending")
		}
	}
	if sum != res.Total {
		t.Errorf("histogram sums to %d, want %d", sum, res.Total)
	}
	if h[0] != res.MaxActuations {
		t.Errorf("histogram head %d != max %d", h[0], res.MaxActuations)
	}
}

func TestTrace(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 8)
	frames, err := Trace(plan, layout, 2)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	for _, f := range frames {
		if !strings.Contains(f, "@") {
			t.Error("frame missing droplet marker")
		}
		if !strings.Contains(f, "cycle ") {
			t.Error("frame missing header")
		}
	}
	// Frame count = sum over first two moves of (cost + 1).
	want := plan.Moves[0].Cost + 1 + plan.Moves[1].Cost + 1
	if len(frames) != want {
		t.Errorf("frames = %d, want %d", len(frames), want)
	}
}

func TestReplayRejectsUnknownModule(t *testing.T) {
	plan, layout, _ := pcrPlan(t, 8)
	bad := *plan
	bad.Moves = append([]exec.Move(nil), plan.Moves...)
	bad.Moves[0].From = "nowhere"
	if _, err := Replay(&bad, layout); err == nil {
		t.Error("unknown module accepted")
	}
}
