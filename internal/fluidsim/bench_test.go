package fluidsim

import (
	"fmt"
	"testing"

	"repro/internal/chip"
	"repro/internal/exec"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/ratio"
	"repro/internal/route"
	"repro/internal/sched"
)

func benchPlan(b *testing.B) (*exec.Plan, *chip.Layout) {
	b.Helper()
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		b.Fatal(err)
	}
	f, err := forest.Build(g, 20)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.SRS(f, 3)
	if err != nil {
		b.Fatal(err)
	}
	l := chip.PCRLayout()
	plan, err := exec.Execute(s, l)
	if err != nil {
		b.Fatal(err)
	}
	return plan, l
}

// legacyReplay is the historical implementation: one map-based ShortestPath
// BFS (fresh seen/prev maps) per move. Kept as the benchmark baseline for the
// Router-kernel replay.
func legacyReplay(plan *exec.Plan, layout *chip.Layout) (*Result, error) {
	blocked := layout.Blocked()
	ports := make(map[string]chip.Point, len(layout.Modules))
	for _, m := range layout.Modules {
		ports[m.Name] = m.Port
	}
	res := &Result{Actuations: make(map[chip.Point]int)}
	for _, mv := range plan.Moves {
		path, err := route.ShortestPath(layout.Width, layout.Height, blocked, ports[mv.From], ports[mv.To])
		if err != nil {
			return nil, fmt.Errorf("fluidsim: move %s->%s: %w", mv.From, mv.To, err)
		}
		res.Moves++
		for _, p := range path[1:] {
			res.Actuations[p]++
			res.MicroSteps++
			res.Total++
		}
	}
	return res, nil
}

// BenchmarkFluidsimReplay compares the Router-kernel replay (one scratch
// buffer set per replay) against the legacy per-move map-based BFS.
func BenchmarkFluidsimReplay(b *testing.B) {
	plan, l := benchPlan(b)
	b.Run("router", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Replay(plan, l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := legacyReplay(plan, l); err != nil {
				b.Fatal(err)
			}
		}
	})
}
