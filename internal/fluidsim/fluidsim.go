// Package fluidsim replays a droplet-transport plan micro-step by
// micro-step on the electrode array. Where internal/exec only sums
// shortest-path costs, the replay walks every droplet along its actual
// route, producing per-electrode actuation counts — the wear metric behind
// the paper's §5 remark that "excessive electrode actuation leads to
// reliability problems and reduced lifetime for biochips" (citing
// Huang/Ho/Chakrabarty, ICCAD 2011) — plus an ASCII heat map and an
// animation trace for inspection.
//
// Moves within one time-cycle are replayed sequentially (droplets share the
// routing channels one at a time), so no two droplets ever meet: the
// classic static/dynamic droplet-interference constraints hold trivially,
// and the simulator asserts obstacle-freedom of every step.
package fluidsim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chip"
	"repro/internal/exec"
	"repro/internal/route"
)

// Result is the outcome of replaying a transport plan.
type Result struct {
	// Moves is the number of droplet transports replayed.
	Moves int
	// MicroSteps is the total number of single-electrode hops.
	MicroSteps int
	// Actuations counts activations per electrode (route cells only;
	// module-internal electrodes are not part of the routing fabric).
	Actuations map[chip.Point]int
	// Total is the sum over Actuations; it equals the plan's TotalCost.
	Total int
	// Hottest is the most-actuated electrode and MaxActuations its count —
	// the chip's reliability bottleneck.
	Hottest       chip.Point
	MaxActuations int
}

// Replay walks every move of the plan along its shortest route and
// accumulates electrode wear. It fails if any move's endpoints cannot be
// resolved or if the walked cost disagrees with the plan (which would
// indicate an exec/route inconsistency).
func Replay(plan *exec.Plan, layout *chip.Layout) (*Result, error) {
	// One Router per replay: the dense kernel reuses its flood scratch across
	// all moves instead of allocating per-call BFS maps. Router.Path is
	// byte-identical to route.ShortestPath, so wear counts and the heat map
	// are unchanged.
	router := route.NewRouter(layout)
	ports := make(map[string]chip.Point, len(layout.Modules))
	for _, m := range layout.Modules {
		ports[m.Name] = m.Port
	}
	res := &Result{Actuations: make(map[chip.Point]int)}
	for _, mv := range plan.Moves {
		from, ok := ports[mv.From]
		if !ok {
			return nil, fmt.Errorf("fluidsim: unknown module %q", mv.From)
		}
		to, ok := ports[mv.To]
		if !ok {
			return nil, fmt.Errorf("fluidsim: unknown module %q", mv.To)
		}
		path, err := router.Path(from, to)
		if err != nil {
			return nil, fmt.Errorf("fluidsim: move %s->%s: %w", mv.From, mv.To, err)
		}
		if len(path)-1 != mv.Cost {
			return nil, fmt.Errorf("fluidsim: move %s->%s walks %d actuations, plan says %d",
				mv.From, mv.To, len(path)-1, mv.Cost)
		}
		res.Moves++
		for _, p := range path[1:] {
			res.Actuations[p]++
			res.MicroSteps++
			res.Total++
		}
	}
	for p, n := range res.Actuations {
		if n > res.MaxActuations || (n == res.MaxActuations && less(p, res.Hottest)) {
			res.MaxActuations = n
			res.Hottest = p
		}
	}
	return res, nil
}

func less(a, b chip.Point) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// Heatmap renders per-electrode wear as ASCII: '.' for untouched routing
// cells, digits for low counts, letters beyond 9, '#' for module cells.
func (r *Result) Heatmap(layout *chip.Layout) string {
	blocked := layout.Blocked()
	var b strings.Builder
	for y := 0; y < layout.Height; y++ {
		for x := 0; x < layout.Width; x++ {
			p := chip.Point{X: x, Y: y}
			switch n := r.Actuations[p]; {
			case blocked(p):
				b.WriteByte('#')
			case n == 0:
				b.WriteByte('.')
			case n <= 9:
				b.WriteByte(byte('0' + n))
			case n <= 35:
				b.WriteByte(byte('a' + n - 10))
			default:
				b.WriteByte('+')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram returns actuation counts sorted descending — the wear profile
// used to compare engine designs for reliability.
func (r *Result) Histogram() []int {
	out := make([]int, 0, len(r.Actuations))
	for _, n := range r.Actuations {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Trace renders up to maxMoves moves as animation frames: one frame per
// micro-step, the droplet shown as '@' on the floorplan.
func Trace(plan *exec.Plan, layout *chip.Layout, maxMoves int) ([]string, error) {
	router := route.NewRouter(layout)
	ports := make(map[string]chip.Point, len(layout.Modules))
	for _, m := range layout.Modules {
		ports[m.Name] = m.Port
	}
	base := layout.Render()
	rows := strings.Split(strings.TrimRight(base, "\n"), "\n")
	var frames []string
	for i, mv := range plan.Moves {
		if i >= maxMoves {
			break
		}
		path, err := router.Path(ports[mv.From], ports[mv.To])
		if err != nil {
			return nil, err
		}
		for step, p := range path {
			grid := make([][]byte, len(rows))
			for y, row := range rows {
				grid[y] = []byte(row)
			}
			grid[p.Y][p.X] = '@'
			var b strings.Builder
			fmt.Fprintf(&b, "cycle %d, move %d/%d (%s %s->%s), step %d/%d\n",
				mv.Cycle, i+1, len(plan.Moves), mv.Purpose, mv.From, mv.To, step, len(path)-1)
			for _, row := range grid {
				b.Write(row)
				b.WriteByte('\n')
			}
			frames = append(frames, b.String())
		}
	}
	return frames, nil
}
