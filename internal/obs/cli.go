package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// EnableCLI is the command-line exporter entry point shared by cmd/mdst and
// cmd/chipsim (-trace out.jsonl, -metrics). It enables observability when a
// trace path or the metrics dump is requested (a no-op finish otherwise).
// The returned finish func writes the metrics dump to metricsTo (stderr in
// the CLIs, keeping stdout clean for -json output) and disables
// observability.
//
// Trace writes are atomic: events stream into a hidden temp file next to
// tracePath and finish renames it into place only after a successful sync,
// so a crashed or interrupted run never leaves a torn half-trace under the
// requested name. On finish-time failure the temp file is removed.
func EnableCLI(tracePath string, metrics bool, metricsTo io.Writer) (finish func() error, err error) {
	if tracePath == "" && !metrics {
		return func() error { return nil }, nil
	}
	var tf *os.File
	opts := Options{}
	if tracePath != "" {
		dir, base := filepath.Split(tracePath)
		if dir == "" {
			dir = "."
		}
		f, err := os.CreateTemp(dir, "."+base+".tmp*")
		if err != nil {
			return nil, fmt.Errorf("obs: create trace temp file: %w", err)
		}
		tf, opts.Trace = f, f
	}
	Enable(opts)
	return func() error {
		var err error
		if metrics {
			err = WriteMetrics(metricsTo)
		}
		Disable()
		if tf != nil {
			// Commit the trace even if the metrics dump failed: the two
			// outputs are independent, and a complete trace is worth keeping.
			terr := tf.Sync()
			if cerr := tf.Close(); terr == nil {
				terr = cerr
			}
			if terr == nil {
				terr = os.Rename(tf.Name(), tracePath)
			}
			if terr != nil {
				os.Remove(tf.Name())
				if err == nil {
					err = terr
				}
			}
		}
		return err
	}, nil
}
