package obs

import (
	"io"
	"os"
)

// EnableCLI is the command-line exporter entry point shared by cmd/mdst and
// cmd/chipsim (-trace out.jsonl, -metrics). It enables observability when a
// trace path or the metrics dump is requested (a no-op finish otherwise),
// creating the trace file if named. The returned finish func writes the
// metrics dump to metricsTo (stderr in the CLIs, keeping stdout clean for
// -json output), disables observability, and closes the trace file.
func EnableCLI(tracePath string, metrics bool, metricsTo io.Writer) (finish func() error, err error) {
	if tracePath == "" && !metrics {
		return func() error { return nil }, nil
	}
	var tf *os.File
	opts := Options{}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		tf, opts.Trace = f, f
	}
	Enable(opts)
	return func() error {
		var err error
		if metrics {
			err = WriteMetrics(metricsTo)
		}
		Disable()
		if tf != nil {
			if cerr := tf.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}
