package obs

import "testing"

// TestDisabledMetricsAllocs pins the disabled-path contract: with no active
// registry, every metric entry point is one atomic pointer load and zero
// allocations. The planning and execution kernels are instrumented
// unconditionally, so any garbage here would show up in the zero-alloc
// steady-state tests across forest, sched and stream.
func TestDisabledMetricsAllocs(t *testing.T) {
	Disable()
	if allocs := testing.AllocsPerRun(100, func() {
		Inc("audit.counter")
		Add("audit.counter", 3)
		Observe("audit.hist", 1.5)
		StartTimer("audit.timer")()
		SetGauge("audit.gauge", 42)
		if Enabled() {
			t.Fatal("observability unexpectedly enabled")
		}
		if Counter("audit.counter") != 0 {
			t.Fatal("disabled counter non-zero")
		}
		if Gauge("audit.gauge") != 0 {
			t.Fatal("disabled gauge non-zero")
		}
	}); allocs != 0 {
		t.Fatalf("disabled metric calls allocate %.1f objects, want 0", allocs)
	}
}
