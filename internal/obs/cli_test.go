package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tmpLeftovers returns the hidden temp files EnableCLI stages trace writes
// in, so tests can assert the atomic-commit protocol never leaks them.
func tmpLeftovers(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmp []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			tmp = append(tmp, e.Name())
		}
	}
	return tmp
}

// TestEnableCLITraceAtomic pins the atomic tracefile contract: while the run
// is in flight the requested path must NOT exist (events stream into a
// hidden temp file), and finish() commits the complete trace via rename,
// leaving no temp debris behind.
func TestEnableCLITraceAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	finish, err := EnableCLI(path, false, nil)
	if err != nil {
		t.Fatalf("EnableCLI: %v", err)
	}
	Emit("test.event", map[string]any{"k": 1})
	Emit("test.event", map[string]any{"k": 2})

	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("trace path %q exists before finish (partial file visible mid-run)", path)
	}
	if got := tmpLeftovers(t, dir); len(got) != 1 {
		t.Fatalf("want exactly 1 in-flight temp file, found %v", got)
	}

	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("committed trace missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace has %d lines, want 2:\n%s", len(lines), data)
	}
	for _, l := range lines {
		if !strings.Contains(l, "test.event") {
			t.Fatalf("trace line %q lacks the emitted event", l)
		}
	}
	if got := tmpLeftovers(t, dir); len(got) != 0 {
		t.Fatalf("temp debris after finish: %v", got)
	}
}

// TestEnableCLIAbandonedRunLeavesNoFinalFile models a crashed run: finish is
// never called, so the requested path must never appear (the half-written
// trace stays quarantined in the temp file).
func TestEnableCLIAbandonedRunLeavesNoFinalFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	_, err := EnableCLI(path, false, nil)
	if err != nil {
		t.Fatalf("EnableCLI: %v", err)
	}
	Emit("test.event", nil)
	Disable() // simulate the process dying without finish()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("abandoned run published %q", path)
	}
}

// TestEnableCLIUnwritableDir pins the error path the CLIs turn into exit
// status 1: an unwritable trace destination fails up front, before any
// planning work runs.
func TestEnableCLIUnwritableDir(t *testing.T) {
	if _, err := EnableCLI(filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl"), false, nil); err == nil {
		Disable()
		t.Fatal("EnableCLI accepted an unwritable trace path")
	}
}

// TestEnableCLINoopWhenDisabled keeps the zero-flag fast path allocation- and
// file-free.
func TestEnableCLINoopWhenDisabled(t *testing.T) {
	finish, err := EnableCLI("", false, nil)
	if err != nil {
		t.Fatalf("EnableCLI: %v", err)
	}
	if Enabled() {
		t.Fatal("observability enabled with no exporters requested")
	}
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}
