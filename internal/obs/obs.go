// Package obs is the observability layer of the droplet-streaming engine:
// a process-wide metrics registry (counters and histograms), structured
// JSONL event tracing, and cycle-profiling timer hooks, all behind a
// near-zero-cost disabled default.
//
// The hot-path contract is a single atomic pointer load: when observability
// is disabled (the default), every Inc/Add/Observe/StartTimer/Emit call
// reduces to loading a nil pointer and returning — no locks, no maps, no
// allocation — so the planning and execution kernels can be instrumented
// unconditionally. Enable swaps in a live registry with one atomic store;
// Disable swaps it back out. The package-level benchmark pins the disabled
// cost at a few nanoseconds per call site, which keeps the end-to-end
// overhead of the instrumented engine within the ≤2% budget.
//
// Callers that build Emit field maps should guard the construction with
// Enabled() so the disabled path also skips the map allocation:
//
//	if obs.Enabled() {
//	    obs.Emit("stream.plan", map[string]any{"demand": d})
//	}
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// registry is the live state behind an enabled observability session.
type registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	gauges   map[string]*atomic.Int64
	hists    map[string]*histogram

	traceMu sync.Mutex
	trace   io.Writer
	seq     int64
	start   time.Time
}

// active is the atomic on/off switch: nil means disabled. Every public
// entry point loads it exactly once.
var active atomic.Pointer[registry]

// Options configures an observability session.
type Options struct {
	// Trace, when non-nil, receives one JSON object per line for every
	// Emit call (the structured event trace).
	Trace io.Writer
}

// Enabled reports whether observability is currently on. It is the guard
// callers use to skip allocation-heavy Emit field construction.
func Enabled() bool { return active.Load() != nil }

// Enable turns observability on with a fresh, empty registry. Metrics
// recorded by a previous session are discarded.
func Enable(opts Options) {
	active.Store(&registry{
		counters: map[string]*atomic.Int64{},
		gauges:   map[string]*atomic.Int64{},
		hists:    map[string]*histogram{},
		trace:    opts.Trace,
		start:    time.Now(),
	})
}

// Disable turns observability off; subsequent calls revert to the no-op
// fast path. The final metric values remain readable through the Snapshot
// taken before disabling (TakeSnapshot); after Disable they are gone.
func Disable() { active.Store(nil) }

// Inc adds 1 to the named counter.
func Inc(name string) { Add(name, 1) }

// Add adds delta to the named counter. Disabled: one atomic load.
func Add(name string, delta int64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.counter(name).Add(delta)
}

func (r *registry) counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &atomic.Int64{}
	r.counters[name] = c
	return c
}

// SetGauge sets the named gauge to v. Unlike a counter, a gauge is a
// point-in-time level (cache occupancy, queue depth); each Set replaces the
// previous value. Disabled: one atomic load, no allocation.
func SetGauge(name string, v int64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.gauge(name).Store(v)
}

// Gauge returns the named gauge's value (0 when absent or disabled).
func Gauge(name string) int64 {
	r := active.Load()
	if r == nil {
		return 0
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	return g.Load()
}

func (r *registry) gauge(name string) *atomic.Int64 {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &atomic.Int64{}
	r.gauges[name] = g
	return g
}

// histogram accumulates a value distribution: count, sum, min, max.
type histogram struct {
	mu    sync.Mutex
	count int64
	sum   float64
	min   float64
	max   float64
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Observe records one sample into the named histogram.
func Observe(name string, v float64) {
	r := active.Load()
	if r == nil {
		return
	}
	r.hist(name).observe(v)
}

func (r *registry) hist(name string) *histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &histogram{}
	r.hists[name] = h
	return h
}

// noopStop is the shared disabled-path timer closure: StartTimer must not
// allocate when observability is off.
var noopStop = func() {}

// StartTimer starts a cycle-profiling timer; calling the returned function
// records the elapsed wall time (in seconds) into the named histogram.
// Disabled: returns a shared no-op closure without reading the clock.
func StartTimer(name string) func() {
	r := active.Load()
	if r == nil {
		return noopStop
	}
	t0 := time.Now()
	return func() { Observe(name, time.Since(t0).Seconds()) }
}

// HistStat is a histogram snapshot.
type HistStat struct {
	Count    int64
	Sum      float64
	Min, Max float64
}

// Mean returns Sum/Count, or 0 before any sample.
func (h HistStat) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistStat
}

// Counter returns the named counter's value (0 when absent or disabled).
func Counter(name string) int64 {
	r := active.Load()
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// TakeSnapshot copies every counter and histogram. Returns an empty
// snapshot when disabled.
func TakeSnapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}, Histograms: map[string]HistStat{}}
	r := active.Load()
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		s.Histograms[name] = HistStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		h.mu.Unlock()
	}
	return s
}

// WriteMetrics renders the current snapshot as sorted "name value" lines —
// the CLI -metrics exporter format.
func WriteMetrics(w io.Writer) error {
	s := TakeSnapshot()
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%s count=%d mean=%s min=%s max=%s\n",
			n, h.Count, fnum(h.Mean()), fnum(h.Min), fnum(h.Max)); err != nil {
			return err
		}
	}
	return nil
}

func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
