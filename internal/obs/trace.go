package obs

import (
	"encoding/json"
	"time"
)

// Event is one structured trace record. Serialised as a single JSON line:
//
//	{"seq":12,"ms":3.41,"event":"stream.plan","fields":{"demand":20,...}}
//
// Seq is a per-session monotone sequence number; Ms is milliseconds since
// Enable. Fields carry the event payload.
type Event struct {
	Seq    int64          `json:"seq"`
	Ms     float64        `json:"ms"`
	Event  string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Emit writes one structured trace event. Disabled, or enabled without a
// trace writer: a no-op. Callers building non-trivial field maps should
// guard with Enabled() to skip the map allocation on the disabled path.
func Emit(event string, fields map[string]any) {
	r := active.Load()
	if r == nil || r.trace == nil {
		return
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	r.seq++
	e := Event{
		Seq:    r.seq,
		Ms:     float64(time.Since(r.start).Microseconds()) / 1e3,
		Event:  event,
		Fields: fields,
	}
	b, err := json.Marshal(e)
	if err != nil {
		// Unserialisable field values must not take down the engine; emit
		// a marker event instead.
		b, _ = json.Marshal(Event{Seq: r.seq, Event: event + ".marshal-error"})
	}
	r.trace.Write(append(b, '\n'))
}
