package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// resetObs guarantees the process-wide registry is off after a test.
func resetObs(t *testing.T) {
	t.Helper()
	t.Cleanup(Disable)
}

func TestDisabledIsInert(t *testing.T) {
	resetObs(t)
	Disable()
	Inc("x")
	Add("x", 5)
	Observe("h", 1.0)
	StartTimer("t")()
	Emit("e", map[string]any{"k": 1})
	if Enabled() {
		t.Fatal("Enabled() true while disabled")
	}
	if Counter("x") != 0 {
		t.Fatal("disabled counter retained a value")
	}
	s := TakeSnapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("disabled snapshot not empty: %+v", s)
	}
}

func TestCountersAndHistograms(t *testing.T) {
	resetObs(t)
	Enable(Options{})
	Inc("a")
	Add("a", 4)
	Inc("b")
	Observe("h", 2)
	Observe("h", 4)
	Observe("h", 6)
	if got := Counter("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	s := TakeSnapshot()
	if s.Counters["b"] != 1 {
		t.Fatalf("counter b = %d, want 1", s.Counters["b"])
	}
	h := s.Histograms["h"]
	if h.Count != 3 || h.Sum != 12 || h.Min != 2 || h.Max != 6 || h.Mean() != 4 {
		t.Fatalf("histogram: %+v", h)
	}
}

func TestGauges(t *testing.T) {
	resetObs(t)
	Enable(Options{})
	SetGauge("g.level", 7)
	SetGauge("g.level", 3) // a gauge replaces, never accumulates
	if got := Gauge("g.level"); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	s := TakeSnapshot()
	if s.Gauges["g.level"] != 3 {
		t.Fatalf("snapshot gauge = %d, want 3", s.Gauges["g.level"])
	}
	var b bytes.Buffer
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "g.level 3\n") {
		t.Fatalf("gauge missing from WriteMetrics output:\n%s", b.String())
	}
}

func TestEnableResetsState(t *testing.T) {
	resetObs(t)
	Enable(Options{})
	Inc("a")
	Enable(Options{})
	if Counter("a") != 0 {
		t.Fatal("Enable did not start a fresh registry")
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	resetObs(t)
	Enable(Options{})
	Inc("z.last")
	Add("a.first", 2)
	Observe("m.hist", 1.5)
	var b bytes.Buffer
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	// Counters sorted, then histograms sorted.
	if lines[0] != "a.first 2" || lines[1] != "z.last 1" {
		t.Fatalf("counter lines wrong:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "m.hist count=1 mean=1.5") {
		t.Fatalf("histogram line wrong: %s", lines[2])
	}
}

func TestTraceEmitsJSONL(t *testing.T) {
	resetObs(t)
	var b syncBuffer
	Enable(Options{Trace: &b})
	Emit("first", map[string]any{"n": 1})
	Emit("second", nil)
	Disable()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 trace lines, got %d: %q", len(lines), b.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if e.Seq != 1 || e.Event != "first" || e.Fields["n"] != float64(1) {
		t.Fatalf("event 1: %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if e.Seq != 2 || e.Event != "second" {
		t.Fatalf("event 2: %+v", e)
	}
}

func TestTraceSurvivesUnmarshalableFields(t *testing.T) {
	resetObs(t)
	var b syncBuffer
	Enable(Options{Trace: &b})
	Emit("bad", map[string]any{"ch": make(chan int)})
	Disable()
	if !strings.Contains(b.String(), "bad.marshal-error") {
		t.Fatalf("marshal failure not marked: %q", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	resetObs(t)
	var b syncBuffer
	Enable(Options{Trace: &b})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Inc("c")
				Observe("h", float64(i))
				Emit("e", nil)
			}
		}()
	}
	wg.Wait()
	if got := Counter("c"); got != 8*500 {
		t.Fatalf("counter c = %d, want %d", got, 8*500)
	}
	s := TakeSnapshot()
	if s.Histograms["h"].Count != 8*500 {
		t.Fatalf("histogram count = %d", s.Histograms["h"].Count)
	}
	if n := strings.Count(b.String(), "\n"); n != 8*500 {
		t.Fatalf("trace lines = %d, want %d", n, 8*500)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for trace tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// The disabled-path benchmarks pin the near-zero-cost contract: a disabled
// call site is one atomic pointer load (single-digit nanoseconds), which is
// what keeps unconditional instrumentation of the planning and execution
// kernels inside the ≤2% end-to-end overhead budget.

func BenchmarkDisabledInc(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Inc("bench.counter")
	}
}

func BenchmarkDisabledObserve(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Observe("bench.hist", 1.0)
	}
}

func BenchmarkDisabledStartTimer(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartTimer("bench.timer")()
	}
}

func BenchmarkDisabledEmit(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Emit("bench.event", nil)
	}
}

func BenchmarkEnabledInc(b *testing.B) {
	Enable(Options{})
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Inc("bench.counter")
	}
}
