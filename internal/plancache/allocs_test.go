package plancache

import (
	"testing"

	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/ratio"
	"repro/internal/sched"
)

// TestWarmGetAllocs pins the plan-cache hit path at zero allocations: the
// serving layer funnels every warm plan request through KeyFor + Get, so
// the pair must stay free of per-call garbage. KeyFor reads two memoised
// graph fields; Get is a map probe plus an intrusive-list move. (obs is
// disabled in tests, so the metric hooks are single atomic loads.)
func TestWarmGetAllocs(t *testing.T) {
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := forest.Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.MMS(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := New(8)
	key := KeyFor(g, 4, 2, "MMS", PristinePolicy)
	c.Put(key, NewPlan(f, s))

	if allocs := testing.AllocsPerRun(100, func() {
		k := KeyFor(g, 4, 2, "MMS", PristinePolicy)
		p, ok := c.Get(k)
		if !ok || p == nil {
			t.Fatal("warm lookup missed")
		}
	}); allocs != 0 {
		t.Fatalf("warm KeyFor+Get allocates %.1f objects, want 0", allocs)
	}

	// The miss path must stay cheap too: a probe that finds nothing does not
	// build anything.
	miss := KeyFor(g, 5, 2, "MMS", PristinePolicy)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get(miss); ok {
			t.Fatal("unexpected hit")
		}
	}); allocs != 0 {
		t.Fatalf("miss Get allocates %.1f objects, want 0", allocs)
	}
}
