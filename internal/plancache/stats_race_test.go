package plancache

import (
	"sync"
	"testing"
)

// TestStatsRaceConsistency hammers one cache from concurrent readers,
// writers and snapshotters and asserts the counter invariant the in-lock
// accounting guarantees: every Stats snapshot — including ones taken in the
// middle of the storm — satisfies lookups == hits + misses exactly. The old
// accounting (atomics bumped after the mutex was released) could be caught
// between a lookup and its outcome; run under -race this test also proves
// the counters themselves are data-race free.
func TestStatsRaceConsistency(t *testing.T) {
	c := New(16)
	p := testPlan(t)

	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent snapshotters: every observed snapshot must balance.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				if st.Lookups != st.Hits+st.Misses {
					t.Errorf("mid-storm snapshot unbalanced: lookups %d != hits %d + misses %d",
						st.Lookups, st.Hits, st.Misses)
					return
				}
			}
		}()
	}

	var work sync.WaitGroup
	for w := 0; w < workers; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			for i := 0; i < iters; i++ {
				k := key((w*31 + i) % 48)
				switch i % 3 {
				case 0:
					c.Get(k)
				case 1:
					c.Put(k, p)
				default:
					if _, err := c.GetOrBuild(k, func() (*Plan, error) { return p, nil }); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	work.Wait()
	close(stop)
	wg.Wait()

	st := c.Stats()
	if st.Lookups != st.Hits+st.Misses {
		t.Fatalf("final snapshot unbalanced: lookups %d != hits %d + misses %d",
			st.Lookups, st.Hits, st.Misses)
	}
	// Get contributes one lookup per call; GetOrBuild one (hit) or two
	// (miss: the failed Get, then Put — Put is not a lookup). The exact
	// total is scheduling-dependent, but it is bounded below by the pure
	// Get volume.
	if minLookups := int64(workers * iters / 3); st.Lookups < minLookups {
		t.Fatalf("lookups %d below the guaranteed floor %d", st.Lookups, minLookups)
	}
}
