package plancache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/mtcs"
	"repro/internal/ratio"
	"repro/internal/sched"
)

func key(i int) Key {
	return Key{Algo: "MM", Ratio: fmt.Sprintf("r%d", i), Demand: i, Mixers: 3, Scheduler: "SRS"}
}

func testPlan(t *testing.T) *Plan {
	t.Helper()
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := forest.Build(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.SRS(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	return NewPlan(f, s)
}

func TestGetPutAndStats(t *testing.T) {
	c := New(8)
	p := testPlan(t)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), p)
	got, ok := c.Get(key(1))
	if !ok || got != p {
		t.Fatal("Put/Get roundtrip failed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Size != 1 || st.Capacity != 8 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
	if c.Stats().String() == "" {
		t.Error("empty Stats.String")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	p := testPlan(t)
	for i := 0; i < 3; i++ {
		c.Put(key(i), p)
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("key 0 missing")
	}
	c.Put(key(3), p)
	if _, ok := c.Get(key(1)); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("entry %d evicted unexpectedly", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 3 {
		t.Errorf("stats = %+v, want 1 eviction at size 3", st)
	}
}

func TestPurgeAndResetStats(t *testing.T) {
	c := New(4)
	c.Put(key(1), testPlan(t))
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get(key(1)); ok {
		t.Error("hit after purge")
	}
	c.ResetStats()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Puts != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(key(1)); ok {
		t.Error("nil cache hit")
	}
	c.Put(key(1), testPlan(t)) // must not panic
	c.Purge()
	c.ResetStats()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache not empty")
	}
	p, err := c.GetOrBuild(key(1), func() (*Plan, error) { return testPlan(t), nil })
	if err != nil || p == nil {
		t.Errorf("nil cache GetOrBuild: %v, %v", p, err)
	}
}

func TestGetOrBuild(t *testing.T) {
	c := New(4)
	builds := 0
	build := func() (*Plan, error) { builds++; return testPlan(t), nil }
	p1, err := c.GetOrBuild(key(1), build)
	if err != nil || p1 == nil {
		t.Fatalf("GetOrBuild: %v", err)
	}
	p2, err := c.GetOrBuild(key(1), build)
	if err != nil || p2 != p1 {
		t.Fatalf("second GetOrBuild rebuilt: %v", err)
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	boom := errors.New("boom")
	if _, err := c.GetOrBuild(key(2), func() (*Plan, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Errorf("build error not propagated: %v", err)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Error("failed build cached")
	}
}

func TestKeyForAndFingerprint(t *testing.T) {
	r := ratio.MustParse("2:1:1:1:1:1:9")
	mm1, err := minmix.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	mm2, err := minmix.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(mm1) != Fingerprint(mm2) {
		t.Error("deterministic builder produced different fingerprints")
	}
	k := KeyFor(mm1, 32, 3, "SRS", PristinePolicy)
	if k != (Key{Algo: "MM", Ratio: "2:1:1:1:1:1:9", Graph: Fingerprint(mm1), Demand: 32, Mixers: 3, Scheduler: "SRS"}) {
		t.Errorf("KeyFor = %+v", k)
	}
	// A structurally different graph over the same ratio must not collide.
	mt, err := mtcs.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(mt) == Fingerprint(mm1) {
		t.Error("MTCS and MM graphs share a fingerprint")
	}
}

// TestPolicyKeysAreDisjoint pins the fault/recovery policy dimension of the
// cache key: a plan built while recovering on a degraded chip must never be
// served for a pristine-chip request, and vice versa.
func TestPolicyKeysAreDisjoint(t *testing.T) {
	c := New(8)
	r := ratio.MustParse("2:1:1:1:1:1:9")
	g, err := minmix.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	degraded := KeyFor(g, 20, 2, "SRS", "recover:th=0.05,cf=0.015625,retries=3")
	pristine := KeyFor(g, 20, 2, "SRS", PristinePolicy)
	if degraded == pristine {
		t.Fatal("degraded and pristine keys collide")
	}
	c.Put(degraded, testPlan(t))
	if _, ok := c.Get(pristine); ok {
		t.Error("recovered-degraded plan served for a pristine-chip request")
	}
	c.Put(pristine, testPlan(t))
	dp, ok1 := c.Get(degraded)
	pp, ok2 := c.Get(pristine)
	if !ok1 || !ok2 || dp == pp {
		t.Error("policy-keyed entries not independent")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(32)
	p := testPlan(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key((w*17 + i) % 64)
				if got, ok := c.Get(k); ok && got == nil {
					t.Error("nil plan from hit")
					return
				}
				c.Put(k, p)
				if _, err := c.GetOrBuild(key(i%16), func() (*Plan, error) { return p, nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("cache overflowed its bound: %d entries", c.Len())
	}
}
