// Package plancache memoises fully-built mixing plans — a mixing forest, its
// schedule, its aggregate stats and its storage footprint — behind a
// concurrency-safe bounded LRU cache.
//
// A plan is a pure function of (base graph, demand, mixer count, scheduling
// scheme): the forest construction and both schedulers are deterministic and
// read-only over their inputs, so a cached plan is exactly the plan a fresh
// build would produce. Keys therefore combine the base algorithm label, the
// target ratio and a structural fingerprint of the base graph with the
// demand, mixer count and scheduler name; the fingerprint makes the key
// sound even for hand-built graphs whose (algorithm, ratio) pair is not
// unique.
//
// Cached plans are shared: callers must treat every reachable object —
// forest, tasks, schedule slots, stats slices — as immutable.
package plancache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/forest"
	"repro/internal/mixgraph"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Key identifies one cached plan.
type Key struct {
	// Algo is the base algorithm label ("MM", "RMA", ...; may be empty for
	// hand-built graphs — Graph disambiguates).
	Algo string
	// Ratio is the target ratio in colon form.
	Ratio string
	// Graph is the structural fingerprint of the base mixing graph.
	Graph uint64
	// Demand is the droplet demand D the plan serves.
	Demand int
	// Mixers is the on-chip mixer count Mc.
	Mixers int
	// Scheduler names the scheduling scheme ("MMS", "SRS").
	Scheduler string
	// Policy fingerprints the fault/recovery policy the plan was built
	// under. Pristine-chip plans use PristinePolicy (""); plans produced by
	// the cyberphysical runtime while recovering on a degraded chip carry a
	// non-empty policy string, so a recovered-degraded plan is never served
	// for a pristine-chip request (and vice versa).
	Policy string
}

// PristinePolicy is the Policy value of plans built for a fault-free,
// fully-provisioned chip.
const PristinePolicy = ""

// Canonical renders the key in a stable, unambiguous text form. It is the
// identity the distributed tier content-addresses plan artifacts by: every
// node rendering the same key produces the same string, so every node derives
// the same artifact address (see internal/artifact.AddressFor). The layout is
// versioned by the leading tag; changing it orphans — never corrupts — any
// artifact store written under the old layout.
func (k Key) Canonical() string {
	return fmt.Sprintf("plankey1|%s|%s|g%016x|d%d|m%d|%s|p%s",
		k.Algo, k.Ratio, k.Graph, k.Demand, k.Mixers, k.Scheduler, k.Policy)
}

// KeyFor builds the cache key for planning `demand` droplets of g's target
// on `mixers` mixers under the named scheduler and fault/recovery policy
// (PristinePolicy for the fault-free planning path).
// Both identity components are memoised on the graph, so a warm KeyFor is
// two atomic loads and zero allocations (the serving layer calls it on
// every plan request).
func KeyFor(g *mixgraph.Graph, demand, mixers int, scheduler, policy string) Key {
	return Key{
		Algo:      g.Algorithm,
		Ratio:     g.TargetKey(),
		Graph:     g.Fingerprint(),
		Demand:    demand,
		Mixers:    mixers,
		Scheduler: scheduler,
		Policy:    policy,
	}
}

// Fingerprint returns the structural hash of a base mixing graph; see
// mixgraph.Graph.Fingerprint. Kept for callers that key their own tables.
func Fingerprint(g *mixgraph.Graph) uint64 { return g.Fingerprint() }

// Plan is one cached planning artefact: the forest grown for the demand, the
// mixer/time assignment, and the two derived quantities every consumer needs
// (forest stats and peak storage units).
type Plan struct {
	Forest   *forest.Forest
	Schedule *sched.Schedule
	Stats    forest.Stats
	Storage  int
}

// NewPlan derives the cached quantities from a built forest and schedule.
func NewPlan(f *forest.Forest, s *sched.Schedule) *Plan {
	return &Plan{Forest: f, Schedule: s, Stats: f.Stats(), Storage: sched.StorageUnits(s)}
}

// Stats is an expvar-style snapshot of a cache's counters. All counters are
// updated inside the cache's critical section, so every snapshot is
// internally consistent: Lookups == Hits + Misses holds exactly, never
// approximately, no matter how many goroutines are hitting the cache.
type Stats struct {
	// Lookups counts Get calls; Hits and Misses count their outcomes
	// (Lookups == Hits + Misses in every snapshot). Puts counts insertions
	// and Evictions counts LRU displacements. Builds counts GetOrBuild
	// misses that actually ran the build function — the cold-plan cost the
	// distributed artifact tier exists to amortize fleet-wide.
	Lookups, Hits, Misses, Puts, Evictions, Builds int64
	// Size is the current entry count; Capacity the configured bound.
	Size, Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot in one line.
func (s Stats) String() string {
	return fmt.Sprintf("plancache: %d/%d entries, %d hits, %d misses (%.1f%% hit rate), %d evictions",
		s.Size, s.Capacity, s.Hits, s.Misses, s.HitRate()*100, s.Evictions)
}

// Cache is a concurrency-safe bounded LRU plan cache. The zero value is not
// usable; construct with New. A nil *Cache is valid and behaves as an
// always-miss cache, so call sites can disable caching by passing nil.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element

	// Counters live under mu (not as free-running atomics bumped after
	// unlock) so a Stats snapshot can never observe a lookup whose outcome
	// has not been recorded yet: lookups == hits + misses is an invariant
	// of every snapshot, which TestStatsRaceConsistency relies on. builds
	// is the exception: GetOrBuild runs the build function outside the lock
	// (builds are slow), so it is a free-running atomic.
	lookups, hits, misses, puts, evictions int64
	builds                                 atomic.Int64
}

type entry struct {
	key  Key
	plan *Plan
}

// DefaultCapacity bounds the process-wide default cache. Its clients — the
// demand-driven engine, stream.Run and interactive RunScheme calls — see a
// small working set of repeated (ratio, demand, mixers, scheduler) tuples;
// the population sweeps bypass the cache entirely (their plans are
// single-use), so a modest bound comfortably covers every real hit pattern
// while keeping worst-case retention, at a few kilobytes per plan, in the
// low megabytes.
const DefaultCapacity = 1024

// New returns an empty cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element, capacity),
	}
}

var std = New(DefaultCapacity)

// Default returns the process-wide cache shared by the streaming engine
// (stream.Run, core.Engine.Request) and the experiment sweeps
// (experiments.RunScheme).
func Default() *Cache { return std }

// Get returns the cached plan for k and marks it most recently used.
func (c *Cache) Get(k Key) (*Plan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	c.lookups++
	el, ok := c.items[k]
	var p *Plan
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		// Capture the plan while still holding the lock: Put's refresh path
		// rewrites entry.plan in place, so reading it after unlock races.
		p = el.Value.(*entry).plan
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		obs.Inc("plancache.misses")
		return nil, false
	}
	obs.Inc("plancache.hits")
	return p, true
}

// Put inserts (or refreshes) a plan, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(k Key, p *Plan) {
	if c == nil || p == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).plan = p
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.puts++
	c.items[k] = c.ll.PushFront(&entry{key: k, plan: p})
	var evicted bool
	if c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		evicted = true
		c.evictions++
	}
	c.mu.Unlock()
	if evicted {
		obs.Inc("plancache.evictions")
	}
}

// GetOrBuild returns the cached plan for k, or invokes build, caches its
// result and returns it. Concurrent callers missing on the same key may both
// invoke build (plans are deterministic, so either result is correct; the
// duplicate work is bounded by the number of workers).
func (c *Cache) GetOrBuild(k Key, build func() (*Plan, error)) (*Plan, error) {
	if p, ok := c.Get(k); ok {
		return p, nil
	}
	if c != nil {
		c.builds.Add(1)
	}
	obs.Inc("plancache.builds")
	p, err := build()
	if err != nil {
		return nil, err
	}
	c.Put(k, p)
	return p, nil
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry. Counters are not reset; see ResetStats.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	clear(c.items)
	c.mu.Unlock()
}

// ResetStats zeroes the lookup/hit/miss/put/eviction counters.
func (c *Cache) ResetStats() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.lookups, c.hits, c.misses, c.puts, c.evictions = 0, 0, 0, 0, 0
	c.builds.Store(0)
	c.mu.Unlock()
}

// Stats snapshots the cache's counters. The snapshot is taken atomically
// under the cache lock, so Lookups == Hits + Misses holds in every snapshot.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Lookups:   c.lookups,
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
		Builds:    c.builds.Load(),
		Size:      c.ll.Len(),
		Capacity:  c.cap,
	}
}
