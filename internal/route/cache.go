package route

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/chip"
	"repro/internal/obs"
)

// The layout-fingerprint matrix cache: every distinct layout geometry pays
// for exactly one all-pairs flood per process (until evicted), no matter how
// many times the mixer-binding search, the cyberphysical runtime's degraded
// replans, the placer or the wear simulator ask for it. The key is an exact
// textual encoding of the routing-relevant geometry — dimensions, module
// names/rects/ports in layout order, and the sorted stuck set — so two
// layouts share an entry if and only if they route identically and intern
// module names identically. Sibling of internal/plancache, which plays the
// same role one layer up for (forest, schedule) plans.

// Fingerprint returns the exact geometry key of a layout: unequal layouts
// never collide (the encoding is injective over routing-relevant state).
func Fingerprint(l *chip.Layout) string {
	var b strings.Builder
	b.Grow(32 * (len(l.Modules) + len(l.Stuck) + 1))
	num := func(v int) {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	num(l.Width)
	num(l.Height)
	for _, m := range l.Modules {
		b.WriteByte('|')
		b.WriteString(m.Name)
		b.WriteByte(';')
		num(m.Rect.X)
		num(m.Rect.Y)
		num(m.Rect.W)
		num(m.Rect.H)
		num(m.Port.X)
		num(m.Port.Y)
	}
	if len(l.Stuck) > 0 {
		cells := make([]int, len(l.Stuck))
		for i, p := range l.Stuck {
			cells[i] = p.Y*l.Width + p.X
		}
		sort.Ints(cells)
		b.WriteByte('!')
		for _, c := range cells {
			num(c)
		}
	}
	return b.String()
}

// matrixCacheCapacity bounds the process-wide matrix store. Real workloads
// touch a handful of geometries (the pristine floorplan plus a few degraded
// variants per fault scenario); annealing never hits the cache at all (its
// swaps reuse one matrix by construction), so a small bound holds every
// live geometry while capping retention at a few hundred kilobytes.
const matrixCacheCapacity = 128

type matrixCache struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type matrixEntry struct {
	key string
	m   *Matrix
}

var (
	matrices = &matrixCache{ll: list.New(), items: map[string]*list.Element{}}

	// matrixBuilds counts full all-pairs matrix computations (cache misses).
	matrixBuilds atomic.Int64
)

// MatrixBuildCount returns the number of from-scratch cost-matrix builds
// performed so far in this process. It exists so performance tests can
// assert that hot paths (the mixer-binding search in internal/exec, the
// degraded replans in internal/runtime) compute each distinct layout
// geometry exactly once; compare deltas, not absolutes (mirrors
// forest.BuildCount).
func MatrixBuildCount() int64 { return matrixBuilds.Load() }

// PurgeMatrixCache drops every cached matrix (the build counter is not
// reset). Tests use it to measure cold-path builds.
func PurgeMatrixCache() {
	matrices.mu.Lock()
	matrices.ll.Init()
	clear(matrices.items)
	matrices.mu.Unlock()
}

// MatrixFor returns the dense transport-cost matrix of the layout, serving
// repeated geometries from the fingerprint cache. The returned Matrix is
// shared and immutable; errors (blocked or unreachable ports) are not
// cached. Safe for concurrent use.
func MatrixFor(l *chip.Layout) (*Matrix, error) {
	key := Fingerprint(l)
	matrices.mu.Lock()
	if el, ok := matrices.items[key]; ok {
		matrices.ll.MoveToFront(el)
		m := el.Value.(*matrixEntry).m
		matrices.mu.Unlock()
		obs.Inc("route.matrix_hits")
		return m, nil
	}
	matrices.mu.Unlock()

	// Build outside the lock: concurrent callers missing on the same key may
	// both build (matrices are deterministic, either result is correct).
	stop := obs.StartTimer("route.matrix_build_ms")
	m, err := NewRouter(l).Matrix()
	stop()
	if err != nil {
		return nil, err
	}
	matrixBuilds.Add(1)
	obs.Inc("route.matrix_builds")

	matrices.mu.Lock()
	if el, ok := matrices.items[key]; ok {
		// Lost the race; keep the incumbent so all callers share one value.
		matrices.ll.MoveToFront(el)
		m = el.Value.(*matrixEntry).m
	} else {
		matrices.items[key] = matrices.ll.PushFront(&matrixEntry{key: key, m: m})
		if matrices.ll.Len() > matrixCacheCapacity {
			back := matrices.ll.Back()
			matrices.ll.Remove(back)
			delete(matrices.items, back.Value.(*matrixEntry).key)
		}
	}
	matrices.mu.Unlock()
	return m, nil
}
