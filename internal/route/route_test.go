package route

import (
	"testing"

	"repro/internal/chip"
)

func noObstacles(chip.Point) bool { return false }

func TestStraightLine(t *testing.T) {
	p, err := ShortestPath(10, 10, noObstacles, chip.Point{X: 0, Y: 0}, chip.Point{X: 5, Y: 0})
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if len(p) != 6 {
		t.Errorf("path length = %d, want 6", len(p))
	}
	if c, _ := Cost(10, 10, noObstacles, chip.Point{X: 0, Y: 0}, chip.Point{X: 5, Y: 0}); c != 5 {
		t.Errorf("cost = %d, want 5", c)
	}
}

func TestManhattanWithoutObstacles(t *testing.T) {
	c, err := Cost(20, 20, noObstacles, chip.Point{X: 2, Y: 3}, chip.Point{X: 10, Y: 9})
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	if c != 8+6 {
		t.Errorf("cost = %d, want 14 (Manhattan)", c)
	}
}

func TestSamePoint(t *testing.T) {
	p, err := ShortestPath(5, 5, noObstacles, chip.Point{X: 2, Y: 2}, chip.Point{X: 2, Y: 2})
	if err != nil || len(p) != 1 {
		t.Errorf("same-point path = %v, %v", p, err)
	}
}

func TestDetourAroundWall(t *testing.T) {
	// Vertical wall at x=2 with a gap at y=4.
	wall := func(p chip.Point) bool { return p.X == 2 && p.Y != 4 }
	c, err := Cost(6, 6, wall, chip.Point{X: 0, Y: 0}, chip.Point{X: 4, Y: 0})
	if err != nil {
		t.Fatalf("Cost: %v", err)
	}
	// Down to the gap (4), across (4), back up (4): 12.
	if c != 12 {
		t.Errorf("detour cost = %d, want 12", c)
	}
}

func TestUnreachable(t *testing.T) {
	wall := func(p chip.Point) bool { return p.X == 2 }
	if _, err := ShortestPath(6, 6, wall, chip.Point{X: 0, Y: 0}, chip.Point{X: 4, Y: 0}); err == nil {
		t.Error("unreachable target routed")
	}
}

func TestEndpointErrors(t *testing.T) {
	if _, err := ShortestPath(5, 5, noObstacles, chip.Point{X: -1, Y: 0}, chip.Point{X: 1, Y: 1}); err == nil {
		t.Error("out-of-grid start accepted")
	}
	blockedAt := func(p chip.Point) bool { return p == chip.Point{X: 1, Y: 1} }
	if _, err := ShortestPath(5, 5, blockedAt, chip.Point{X: 0, Y: 0}, chip.Point{X: 1, Y: 1}); err == nil {
		t.Error("blocked endpoint accepted")
	}
}

func TestPathIsConnectedAndFree(t *testing.T) {
	l := chip.PCRLayout()
	blocked := l.Blocked()
	from := l.Modules[0].Port
	to := l.Modules[len(l.Modules)-1].Port
	p, err := ShortestPath(l.Width, l.Height, blocked, from, to)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	for i, pt := range p {
		if blocked(pt) {
			t.Fatalf("path crosses obstacle at %v", pt)
		}
		if i > 0 {
			dx, dy := pt.X-p[i-1].X, pt.Y-p[i-1].Y
			if dx*dx+dy*dy != 1 {
				t.Fatalf("path not 4-connected at step %d", i)
			}
		}
	}
}

func TestCostMatrixPCR(t *testing.T) {
	l := chip.PCRLayout()
	m, err := CostMatrix(l)
	if err != nil {
		t.Fatalf("CostMatrix: %v", err)
	}
	for _, a := range l.Modules {
		if m[[2]string{a.Name, a.Name}] != 0 {
			t.Errorf("self-cost of %s nonzero", a.Name)
		}
		for _, b := range l.Modules {
			if m[[2]string{a.Name, b.Name}] != m[[2]string{b.Name, a.Name}] {
				t.Errorf("cost matrix asymmetric for %s/%s", a.Name, b.Name)
			}
			if a.Name != b.Name && m[[2]string{a.Name, b.Name}] <= 0 {
				t.Errorf("cost %s->%s = %d, want positive", a.Name, b.Name, m[[2]string{a.Name, b.Name}])
			}
		}
	}
	// Triangle inequality through free routing.
	for _, a := range l.Modules {
		for _, b := range l.Modules {
			for _, c := range l.Modules {
				ab := m[[2]string{a.Name, b.Name}]
				bc := m[[2]string{b.Name, c.Name}]
				ac := m[[2]string{a.Name, c.Name}]
				// Paths may need to reach b's port, so allow the detour via
				// the port: strict triangle inequality need not hold, but a
				// gross violation signals a routing bug.
				if ac > ab+bc+4 {
					t.Errorf("wild triangle violation %s-%s-%s: %d > %d+%d",
						a.Name, b.Name, c.Name, ac, ab, bc)
				}
			}
		}
	}
}
