package route

import (
	"errors"
	"fmt"

	"repro/internal/chip"
)

// ErrUnknownPair reports a transport-matrix lookup naming a module the
// matrix was not built over. Legacy map-based matrices silently returned
// distance 0 for such pairs, which made "nearest module" searches pick
// unreachable modules; dense Matrix lookups fail loudly instead.
var ErrUnknownPair = errors.New("route: unknown module pair")

// Matrix is the dense inter-module transport-cost matrix of one layout
// geometry: the Fig. 5 matrix with module names interned to dense indices
// and distances stored in a flat row-major []int32, so the hot planning
// loops (mixer-binding search, placement annealing, the cyberphysical
// replans) pay one map lookup per module *name* and O(1) array reads per
// pair afterwards.
//
// A Matrix is immutable after construction and safe for concurrent use; the
// layout-fingerprint cache (MatrixFor) shares one instance across callers.
type Matrix struct {
	names []string
	index map[string]int
	d     []int32 // row-major: d[i*len(names)+j]
}

// Len returns the number of modules the matrix covers.
func (m *Matrix) Len() int { return len(m.names) }

// Names returns the module names in matrix-index order. Callers must not
// mutate the returned slice (matrices are shared via the fingerprint cache).
func (m *Matrix) Names() []string { return m.names }

// IndexOf resolves a module name to its dense matrix index.
func (m *Matrix) IndexOf(name string) (int, bool) {
	i, ok := m.index[name]
	return i, ok
}

// At returns the transport cost between the modules at dense indices i and
// j. It performs no bounds checking beyond the slice's own; resolve indices
// with IndexOf.
func (m *Matrix) At(i, j int) int { return int(m.d[i*len(m.names)+j]) }

// Dist returns the transport cost between two modules by name, failing with
// ErrUnknownPair when either name is not covered — never a silent zero.
func (m *Matrix) Dist(a, b string) (int, error) {
	i, ok := m.index[a]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPair, a)
	}
	j, ok := m.index[b]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPair, b)
	}
	return m.At(i, j), nil
}

// Legacy materialises the matrix as the historical map[[2]string]int form.
// The map is freshly allocated on every call, so callers may mutate it; new
// code should prefer index-addressed At lookups.
func (m *Matrix) Legacy() map[[2]string]int {
	out := make(map[[2]string]int, len(m.names)*len(m.names))
	for i, a := range m.names {
		for j, b := range m.names {
			out[[2]string{a, b}] = m.At(i, j)
		}
	}
	return out
}

// Router is the dense routing kernel bound to one layout geometry: a flat
// obstacle grid plus reusable BFS scratch buffers (distance, predecessor and
// queue arrays stamped by generation), so floods, point-to-point distances
// and path walks allocate nothing per call. A Router is NOT safe for
// concurrent use — each goroutine builds its own (construction is O(W·H)).
type Router struct {
	w, h    int
	blocked []bool
	modules []chip.Module

	dist  []int32  // distance per cell, valid where mark == gen
	prev  []int32  // predecessor cell index, valid where mark == gen
	mark  []uint32 // generation stamp per cell
	gen   uint32
	queue []int32
}

// NewRouter builds a routing kernel over the layout's obstacle grid.
func NewRouter(l *chip.Layout) *Router {
	n := l.Width * l.Height
	r := &Router{
		w:       l.Width,
		h:       l.Height,
		blocked: make([]bool, n),
		modules: l.Modules,
		dist:    make([]int32, n),
		prev:    make([]int32, n),
		mark:    make([]uint32, n),
		queue:   make([]int32, 0, n),
	}
	blocked := l.Blocked()
	for y := 0; y < l.Height; y++ {
		for x := 0; x < l.Width; x++ {
			r.blocked[y*l.Width+x] = blocked(chip.Point{X: x, Y: y})
		}
	}
	return r
}

func (r *Router) inGrid(p chip.Point) bool {
	return p.X >= 0 && p.Y >= 0 && p.X < r.w && p.Y < r.h
}

func (r *Router) cell(p chip.Point) int32 { return int32(p.Y*r.w + p.X) }

// checkEndpoint validates one BFS endpoint against the grid and obstacles.
func (r *Router) checkEndpoint(p chip.Point) error {
	if !r.inGrid(p) {
		return fmt.Errorf("%w: (%d,%d)", ErrOutOfGrid, p.X, p.Y)
	}
	if r.blocked[r.cell(p)] {
		return fmt.Errorf("%w: (%d,%d)", ErrBlocked, p.X, p.Y)
	}
	return nil
}

// flood runs a full BFS flood from `from`, filling dist for every reachable
// cell under the current generation stamp. If `to` >= 0, the flood stops as
// soon as that cell is labelled (early exit for point queries) and reports
// whether it was reached; with to < 0 it floods the whole component and
// returns false. Neighbour order matches the legacy map-based BFS
// ({+x, -x, +y, -y}) so reconstructed paths are byte-identical to the
// historical ShortestPath output.
func (r *Router) flood(from chip.Point, to int32, track bool) bool {
	r.gen++
	if r.gen == 0 { // wrapped: invalidate all stamps
		clear(r.mark)
		r.gen = 1
	}
	start := r.cell(from)
	r.mark[start] = r.gen
	r.dist[start] = 0
	if track {
		r.prev[start] = -1
	}
	q := append(r.queue[:0], start)
	for head := 0; head < len(q); head++ {
		cur := q[head]
		cx, cy := int(cur)%r.w, int(cur)/r.w
		d := r.dist[cur] + 1
		// Unrolled 4-neighbourhood in legacy order: +x, -x, +y, -y.
		if cx+1 < r.w {
			if n := cur + 1; r.mark[n] != r.gen && !r.blocked[n] {
				r.mark[n], r.dist[n] = r.gen, d
				if track {
					r.prev[n] = cur
				}
				if n == to {
					r.queue = q
					return true
				}
				q = append(q, n)
			}
		}
		if cx > 0 {
			if n := cur - 1; r.mark[n] != r.gen && !r.blocked[n] {
				r.mark[n], r.dist[n] = r.gen, d
				if track {
					r.prev[n] = cur
				}
				if n == to {
					r.queue = q
					return true
				}
				q = append(q, n)
			}
		}
		if cy+1 < r.h {
			if n := cur + int32(r.w); r.mark[n] != r.gen && !r.blocked[n] {
				r.mark[n], r.dist[n] = r.gen, d
				if track {
					r.prev[n] = cur
				}
				if n == to {
					r.queue = q
					return true
				}
				q = append(q, n)
			}
		}
		if cy > 0 {
			if n := cur - int32(r.w); r.mark[n] != r.gen && !r.blocked[n] {
				r.mark[n], r.dist[n] = r.gen, d
				if track {
					r.prev[n] = cur
				}
				if n == to {
					r.queue = q
					return true
				}
				q = append(q, n)
			}
		}
	}
	r.queue = q
	return false
}

// Distance returns the shortest obstacle-free transport cost between two
// electrodes, computed directly from the BFS flood with no path
// reconstruction and no per-call allocation.
func (r *Router) Distance(from, to chip.Point) (int, error) {
	if err := r.checkEndpoint(from); err != nil {
		return 0, err
	}
	if err := r.checkEndpoint(to); err != nil {
		return 0, err
	}
	if from == to {
		return 0, nil
	}
	t := r.cell(to)
	if !r.flood(from, t, false) {
		return 0, fmt.Errorf("%w: (%d,%d) to (%d,%d)", ErrUnreachable, from.X, from.Y, to.X, to.Y)
	}
	return int(r.dist[t]), nil
}

// Path returns a minimum-length 4-connected path from `from` to `to`,
// endpoints included, reusing the Router's scratch buffers. The returned
// path is byte-identical to the legacy map-based ShortestPath (same BFS
// tie-breaking); only the returned slice is allocated.
func (r *Router) Path(from, to chip.Point) ([]chip.Point, error) {
	if err := r.checkEndpoint(from); err != nil {
		return nil, err
	}
	if err := r.checkEndpoint(to); err != nil {
		return nil, err
	}
	if from == to {
		return []chip.Point{from}, nil
	}
	t := r.cell(to)
	if !r.flood(from, t, true) {
		return nil, fmt.Errorf("%w: (%d,%d) to (%d,%d)", ErrUnreachable, from.X, from.Y, to.X, to.Y)
	}
	path := make([]chip.Point, r.dist[t]+1)
	for i, c := len(path)-1, t; i >= 0; i, c = i-1, r.prev[c] {
		path[i] = chip.Point{X: int(c) % r.w, Y: int(c) / r.w}
	}
	return path, nil
}

// Matrix computes the dense inter-module transport-cost matrix: one whole-
// grid flood per module port covers all of its targets, filling the flat
// distance table. The matrix is symmetric because shortest paths are.
func (r *Router) Matrix() (*Matrix, error) {
	n := len(r.modules)
	m := &Matrix{
		names: make([]string, n),
		index: make(map[string]int, n),
		d:     make([]int32, n*n),
	}
	ports := make([]int32, n)
	for i, mod := range r.modules {
		m.names[i] = mod.Name
		m.index[mod.Name] = i
		if !r.inGrid(mod.Port) || r.blocked[r.cell(mod.Port)] {
			return nil, fmt.Errorf("route: port of %s blocked", mod.Name)
		}
		ports[i] = r.cell(mod.Port)
	}
	for i := range r.modules {
		r.flood(r.modules[i].Port, -1, false)
		row := m.d[i*n : (i+1)*n]
		for j, pc := range ports {
			if r.mark[pc] != r.gen {
				return nil, fmt.Errorf("route: %s to %s: %w", m.names[i], m.names[j], ErrUnreachable)
			}
			row[j] = r.dist[pc]
		}
	}
	return m, nil
}
