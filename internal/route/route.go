// Package route provides droplet routing on the electrode array: 4-connected
// breadth-first shortest paths around module obstacles, the primitive behind
// the chip-level transport-cost matrix and electrode-actuation accounting of
// the DAC 2014 droplet-streaming paper (§5).
package route

import (
	"errors"
	"fmt"

	"repro/internal/chip"
)

// Routing errors.
var (
	ErrUnreachable = errors.New("route: no obstacle-free path")
	ErrBlocked     = errors.New("route: endpoint on a blocked electrode")
	ErrOutOfGrid   = errors.New("route: endpoint outside the array")
)

// ShortestPath returns a minimum-length 4-connected path from `from` to `to`
// over free electrodes, endpoints included. The path cost in electrode
// actuations is len(path)-1 (each move actuates the next electrode).
func ShortestPath(width, height int, blocked func(chip.Point) bool, from, to chip.Point) ([]chip.Point, error) {
	inGrid := func(p chip.Point) bool {
		return p.X >= 0 && p.Y >= 0 && p.X < width && p.Y < height
	}
	for _, p := range []chip.Point{from, to} {
		if !inGrid(p) {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrOutOfGrid, p.X, p.Y)
		}
		if blocked(p) {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrBlocked, p.X, p.Y)
		}
	}
	if from == to {
		return []chip.Point{from}, nil
	}
	prev := make(map[chip.Point]chip.Point, width*height)
	seen := make(map[chip.Point]bool, width*height)
	seen[from] = true
	queue := []chip.Point{from}
	dirs := [4]chip.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			next := chip.Point{X: cur.X + d.X, Y: cur.Y + d.Y}
			if !inGrid(next) || seen[next] || blocked(next) {
				continue
			}
			seen[next] = true
			prev[next] = cur
			if next == to {
				return reconstruct(prev, from, to), nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("%w: (%d,%d) to (%d,%d)", ErrUnreachable, from.X, from.Y, to.X, to.Y)
}

func reconstruct(prev map[chip.Point]chip.Point, from, to chip.Point) []chip.Point {
	var rev []chip.Point
	for p := to; p != from; p = prev[p] {
		rev = append(rev, p)
	}
	rev = append(rev, from)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Cost returns the actuation cost of the shortest path between two points.
// The distance comes directly from a flat-array BFS flood with early exit —
// no path reconstruction, no per-call maps.
func Cost(width, height int, blocked func(chip.Point) bool, from, to chip.Point) (int, error) {
	inGrid := func(p chip.Point) bool {
		return p.X >= 0 && p.Y >= 0 && p.X < width && p.Y < height
	}
	for _, p := range []chip.Point{from, to} {
		if !inGrid(p) {
			return 0, fmt.Errorf("%w: (%d,%d)", ErrOutOfGrid, p.X, p.Y)
		}
		if blocked(p) {
			return 0, fmt.Errorf("%w: (%d,%d)", ErrBlocked, p.X, p.Y)
		}
	}
	if from == to {
		return 0, nil
	}
	idx := func(p chip.Point) int32 { return int32(p.Y*width + p.X) }
	dist := make([]int32, width*height)
	for i := range dist {
		dist[i] = -1
	}
	target := idx(to)
	dist[idx(from)] = 0
	queue := make([]chip.Point, 1, width*height)
	queue[0] = from
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		d := dist[idx(cur)] + 1
		for _, dir := range [4]chip.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			next := chip.Point{X: cur.X + dir.X, Y: cur.Y + dir.Y}
			if !inGrid(next) {
				continue
			}
			n := idx(next)
			if dist[n] >= 0 || blocked(next) {
				continue
			}
			dist[n] = d
			if n == target {
				return int(d), nil
			}
			queue = append(queue, next)
		}
	}
	return 0, fmt.Errorf("%w: (%d,%d) to (%d,%d)", ErrUnreachable, from.X, from.Y, to.X, to.Y)
}

// CostMatrix computes the inter-module transport-cost matrix of a layout
// (the matrix of Fig. 5): actuations on the shortest port-to-port path for
// every ordered module pair, as the historical map form. It runs on the
// dense Router kernel; hot paths should use MatrixFor (cached, dense,
// index-addressed) instead.
func CostMatrix(l *chip.Layout) (map[[2]string]int, error) {
	m, err := NewRouter(l).Matrix()
	if err != nil {
		return nil, err
	}
	return m.Legacy(), nil
}
