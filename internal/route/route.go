// Package route provides droplet routing on the electrode array: 4-connected
// breadth-first shortest paths around module obstacles, the primitive behind
// the chip-level transport-cost matrix and electrode-actuation accounting of
// the DAC 2014 droplet-streaming paper (§5).
package route

import (
	"errors"
	"fmt"

	"repro/internal/chip"
)

// Routing errors.
var (
	ErrUnreachable = errors.New("route: no obstacle-free path")
	ErrBlocked     = errors.New("route: endpoint on a blocked electrode")
	ErrOutOfGrid   = errors.New("route: endpoint outside the array")
)

// ShortestPath returns a minimum-length 4-connected path from `from` to `to`
// over free electrodes, endpoints included. The path cost in electrode
// actuations is len(path)-1 (each move actuates the next electrode).
func ShortestPath(width, height int, blocked func(chip.Point) bool, from, to chip.Point) ([]chip.Point, error) {
	inGrid := func(p chip.Point) bool {
		return p.X >= 0 && p.Y >= 0 && p.X < width && p.Y < height
	}
	for _, p := range []chip.Point{from, to} {
		if !inGrid(p) {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrOutOfGrid, p.X, p.Y)
		}
		if blocked(p) {
			return nil, fmt.Errorf("%w: (%d,%d)", ErrBlocked, p.X, p.Y)
		}
	}
	if from == to {
		return []chip.Point{from}, nil
	}
	prev := make(map[chip.Point]chip.Point, width*height)
	seen := make(map[chip.Point]bool, width*height)
	seen[from] = true
	queue := []chip.Point{from}
	dirs := [4]chip.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range dirs {
			next := chip.Point{X: cur.X + d.X, Y: cur.Y + d.Y}
			if !inGrid(next) || seen[next] || blocked(next) {
				continue
			}
			seen[next] = true
			prev[next] = cur
			if next == to {
				return reconstruct(prev, from, to), nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("%w: (%d,%d) to (%d,%d)", ErrUnreachable, from.X, from.Y, to.X, to.Y)
}

func reconstruct(prev map[chip.Point]chip.Point, from, to chip.Point) []chip.Point {
	var rev []chip.Point
	for p := to; p != from; p = prev[p] {
		rev = append(rev, p)
	}
	rev = append(rev, from)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Cost returns the actuation cost of the shortest path between two points.
func Cost(width, height int, blocked func(chip.Point) bool, from, to chip.Point) (int, error) {
	p, err := ShortestPath(width, height, blocked, from, to)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// CostMatrix computes the inter-module transport-cost matrix of a layout
// (the matrix of Fig. 5): actuations on the shortest port-to-port path for
// every ordered module pair. The matrix is symmetric because paths are.
// One BFS flood per module covers all of its targets.
func CostMatrix(l *chip.Layout) (map[[2]string]int, error) {
	blocked := l.Blocked()
	out := make(map[[2]string]int, len(l.Modules)*len(l.Modules))
	dist := make([]int, l.Width*l.Height)
	queue := make([]chip.Point, 0, l.Width*l.Height)
	for _, a := range l.Modules {
		// Flood-fill distances from a's port.
		for i := range dist {
			dist[i] = -1
		}
		idx := func(p chip.Point) int { return p.Y*l.Width + p.X }
		if blocked(a.Port) {
			return nil, fmt.Errorf("route: port of %s blocked", a.Name)
		}
		dist[idx(a.Port)] = 0
		queue = append(queue[:0], a.Port)
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			for _, d := range [4]chip.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
				next := chip.Point{X: cur.X + d.X, Y: cur.Y + d.Y}
				if next.X < 0 || next.Y < 0 || next.X >= l.Width || next.Y >= l.Height {
					continue
				}
				if dist[idx(next)] >= 0 || blocked(next) {
					continue
				}
				dist[idx(next)] = dist[idx(cur)] + 1
				queue = append(queue, next)
			}
		}
		for _, b := range l.Modules {
			d := dist[idx(b.Port)]
			if d < 0 {
				return nil, fmt.Errorf("route: %s to %s: %w", a.Name, b.Name, ErrUnreachable)
			}
			out[[2]string{a.Name, b.Name}] = d
		}
	}
	return out, nil
}
