package route

import (
	"errors"
	"testing"

	"repro/internal/chip"
)

// TestCostMatrixWalledOffModule walls a module's port behind stuck
// electrodes: the matrix build must return ErrUnreachable, not hang or panic.
func TestCostMatrixWalledOffModule(t *testing.T) {
	l := chip.PCRLayout()
	m2, ok := l.Module("M2")
	if !ok {
		t.Fatal("PCR layout has no M2")
	}
	p := m2.Port
	walled := l.Degrade(nil, []chip.Point{
		{X: p.X - 1, Y: p.Y}, {X: p.X + 1, Y: p.Y},
		{X: p.X, Y: p.Y - 1}, {X: p.X, Y: p.Y + 1},
	})
	if _, err := CostMatrix(walled); !errors.Is(err, ErrUnreachable) {
		t.Errorf("CostMatrix: err = %v, want ErrUnreachable", err)
	}
}

// TestCostMatrixStuckPort sticks the electrode under a port itself.
func TestCostMatrixStuckPort(t *testing.T) {
	l := chip.PCRLayout()
	w1, ok := l.Module("W1")
	if !ok {
		t.Fatal("PCR layout has no W1")
	}
	if _, err := CostMatrix(l.Degrade(nil, []chip.Point{w1.Port})); err == nil {
		t.Error("CostMatrix with a stuck port succeeded")
	}
}

// TestStuckCellsBlockRouting folds Layout.Stuck into the obstacle oracle:
// paths must detour around stuck electrodes, lengthening the route.
func TestStuckCellsBlockRouting(t *testing.T) {
	l := chip.PCRLayout()
	base, err := CostMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	// Block the channel intersection at (6,6); some route must lengthen and
	// none may shorten.
	stuck := l.Degrade(nil, []chip.Point{{X: 6, Y: 6}})
	if !stuck.Blocked()(chip.Point{X: 6, Y: 6}) {
		t.Fatal("Degrade did not mark the electrode stuck")
	}
	got, err := CostMatrix(stuck)
	if err != nil {
		t.Fatal(err)
	}
	longer := false
	for k, d := range got {
		if d < base[k] {
			t.Errorf("%s->%s shortened: %d < %d", k[0], k[1], d, base[k])
		}
		if d > base[k] {
			longer = true
		}
	}
	if !longer {
		t.Error("blocking a channel cell lengthened no route; pick a busier cell")
	}
}

// TestDegradeDropsModules removes a mixer from the roster.
func TestDegradeDropsModules(t *testing.T) {
	l := chip.PCRLayout()
	d := l.Degrade(map[string]bool{"M3": true}, nil)
	if _, ok := d.Module("M3"); ok {
		t.Error("Degrade kept the dropped module")
	}
	if len(d.OfKind(chip.Mixer)) != 2 {
		t.Errorf("mixers after drop = %d, want 2", len(d.OfKind(chip.Mixer)))
	}
	if len(l.OfKind(chip.Mixer)) != 3 {
		t.Error("Degrade mutated the receiver")
	}
	if _, err := CostMatrix(d); err != nil {
		t.Errorf("degraded layout unroutable: %v", err)
	}
}
