package route

import (
	"testing"

	"repro/internal/chip"
)

// TestMatrixLookupAllocs pins the transport-matrix hot path at zero
// allocations: the mixer-binding search and the placement annealer issue
// millions of At/Dist lookups per optimisation run, so a single allocation
// per call would dominate their profiles. The dense row-major layout makes
// every lookup an index computation plus one or two map probes — nothing
// escapes.
func TestMatrixLookupAllocs(t *testing.T) {
	m, err := MatrixFor(chip.PCRLayout())
	if err != nil {
		t.Fatal(err)
	}
	n := m.Len()
	if n < 2 {
		t.Fatalf("PCR layout matrix covers %d modules", n)
	}
	names := m.Names()

	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) < 0 {
					t.Fatal("negative distance")
				}
			}
		}
	}); allocs != 0 {
		t.Fatalf("Matrix.At allocates %.1f objects per all-pairs sweep, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		for _, name := range names {
			if _, ok := m.IndexOf(name); !ok {
				t.Fatalf("module %q missing", name)
			}
		}
	}); allocs != 0 {
		t.Fatalf("Matrix.IndexOf allocates %.1f objects per sweep, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Dist(names[0], names[n-1]); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Matrix.Dist (hit) allocates %.1f objects, want 0", allocs)
	}
}
