package route

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/chip"
)

// legacyCostMatrix is the historical per-pair implementation: one map-based
// ShortestPath BFS (with full path reconstruction) for every ordered module
// pair. It is the golden reference the dense Router kernel must reproduce.
func legacyCostMatrix(l *chip.Layout) (map[[2]string]int, error) {
	blocked := l.Blocked()
	m := map[[2]string]int{}
	for _, a := range l.Modules {
		for _, b := range l.Modules {
			p, err := ShortestPath(l.Width, l.Height, blocked, a.Port, b.Port)
			if err != nil {
				return nil, err
			}
			m[[2]string{a.Name, b.Name}] = len(p) - 1
		}
	}
	return m, nil
}

// layoutFamily returns a representative set of layout geometries: the Fig. 5
// floorplan, its storage variants, auto-generated lattices and degraded
// (dead-module and stuck-electrode) descendants.
func layoutFamily(t *testing.T) map[string]*chip.Layout {
	t.Helper()
	fam := map[string]*chip.Layout{"pcr": chip.PCRLayout()}
	for _, q := range []int{0, 3, 6} {
		l, err := chip.PCRLayoutWithStorage(q)
		if err != nil {
			t.Fatalf("PCRLayoutWithStorage(%d): %v", q, err)
		}
		fam["pcr-q"+string(rune('0'+q))] = l
	}
	auto, err := chip.AutoLayout(10, 4, 6)
	if err != nil {
		t.Fatalf("AutoLayout: %v", err)
	}
	fam["auto-10-4-6"] = auto
	small, err := chip.AutoLayout(3, 2, 2)
	if err != nil {
		t.Fatalf("AutoLayout small: %v", err)
	}
	fam["auto-3-2-2"] = small
	fam["pcr-dead-m3"] = chip.PCRLayout().Degrade(map[string]bool{"M3": true}, nil)
	fam["pcr-stuck"] = chip.PCRLayout().Degrade(nil, []chip.Point{{X: 6, Y: 6}})
	return fam
}

// TestMatrixMatchesLegacyCostMatrix pins the dense kernel to the golden
// per-pair BFS reference over the whole layout family.
func TestMatrixMatchesLegacyCostMatrix(t *testing.T) {
	for name, l := range layoutFamily(t) {
		want, err := legacyCostMatrix(l)
		if err != nil {
			t.Fatalf("%s: legacy: %v", name, err)
		}
		m, err := NewRouter(l).Matrix()
		if err != nil {
			t.Fatalf("%s: Matrix: %v", name, err)
		}
		if got := m.Legacy(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: dense matrix differs from legacy per-pair BFS", name)
		}
		// The public CostMatrix adapter must agree too.
		got, err := CostMatrix(l)
		if err != nil {
			t.Fatalf("%s: CostMatrix: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: CostMatrix differs from legacy per-pair BFS", name)
		}
		// Index-addressed lookups agree with name-addressed ones.
		for _, a := range l.Modules {
			for _, b := range l.Modules {
				d, err := m.Dist(a.Name, b.Name)
				if err != nil {
					t.Fatalf("%s: Dist(%s,%s): %v", name, a.Name, b.Name, err)
				}
				if d != want[[2]string{a.Name, b.Name}] {
					t.Errorf("%s: Dist(%s,%s) = %d, want %d", name, a.Name, b.Name, d, want[[2]string{a.Name, b.Name}])
				}
			}
		}
	}
}

// TestRouterPathEqualsShortestPath pins path byte-identity: the Router's
// scratch-buffer BFS must reproduce the legacy map-based BFS exactly (same
// tie-breaking), or fluidsim heat maps and traces would drift.
func TestRouterPathEqualsShortestPath(t *testing.T) {
	for name, l := range layoutFamily(t) {
		r := NewRouter(l)
		blocked := l.Blocked()
		for _, a := range l.Modules {
			for _, b := range l.Modules {
				want, errW := ShortestPath(l.Width, l.Height, blocked, a.Port, b.Port)
				got, errG := r.Path(a.Port, b.Port)
				if (errW == nil) != (errG == nil) {
					t.Fatalf("%s: %s->%s: err %v vs %v", name, a.Name, b.Name, errW, errG)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: %s->%s: Router.Path differs from ShortestPath:\n got %v\nwant %v",
						name, a.Name, b.Name, got, want)
				}
			}
		}
	}
}

// bruteDistance is an independent shortest-path reference: plain Dijkstra
// over a map-based adjacency (uniform weights), sharing no code with the
// production BFS kernels.
func bruteDistance(w, h int, blocked func(chip.Point) bool, from, to chip.Point) (int, bool) {
	if blocked(from) || blocked(to) {
		return 0, false
	}
	dist := map[chip.Point]int{from: 0}
	done := map[chip.Point]bool{}
	for {
		// Extract the unvisited point with minimum tentative distance.
		best, bestD, found := chip.Point{}, 0, false
		for p, d := range dist {
			if done[p] {
				continue
			}
			if !found || d < bestD {
				best, bestD, found = p, d, true
			}
		}
		if !found {
			return 0, false
		}
		if best == to {
			return bestD, true
		}
		done[best] = true
		for _, d := range []chip.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			n := chip.Point{X: best.X + d.X, Y: best.Y + d.Y}
			if n.X < 0 || n.Y < 0 || n.X >= w || n.Y >= h || blocked(n) {
				continue
			}
			if old, ok := dist[n]; !ok || bestD+1 < old {
				dist[n] = bestD + 1
			}
		}
	}
}

// TestCostAgainstBruteForceDijkstra is the property test: on randomized
// grids with random obstacles, Cost, Router.Distance, Router.Path and
// ShortestPath all agree with an independent Dijkstra reference.
func TestCostAgainstBruteForceDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(20140601))
	for trial := 0; trial < 120; trial++ {
		w, h := 3+rng.Intn(10), 3+rng.Intn(10)
		density := rng.Float64() * 0.35
		obst := make(map[chip.Point]bool)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if rng.Float64() < density {
					obst[chip.Point{X: x, Y: y}] = true
				}
			}
		}
		blocked := func(p chip.Point) bool { return obst[p] }
		for q := 0; q < 8; q++ {
			from := chip.Point{X: rng.Intn(w), Y: rng.Intn(h)}
			to := chip.Point{X: rng.Intn(w), Y: rng.Intn(h)}
			if blocked(from) || blocked(to) {
				continue
			}
			want, reachable := bruteDistance(w, h, blocked, from, to)
			gotCost, errCost := Cost(w, h, blocked, from, to)
			gotPath, errPath := ShortestPath(w, h, blocked, from, to)
			if reachable {
				if errCost != nil || errPath != nil {
					t.Fatalf("grid %dx%d %v->%v: reachable but Cost err=%v Path err=%v",
						w, h, from, to, errCost, errPath)
				}
				if gotCost != want {
					t.Fatalf("grid %dx%d %v->%v: Cost=%d, Dijkstra=%d", w, h, from, to, gotCost, want)
				}
				if len(gotPath)-1 != want {
					t.Fatalf("grid %dx%d %v->%v: path len %d, Dijkstra %d", w, h, from, to, len(gotPath)-1, want)
				}
			} else {
				if !errors.Is(errCost, ErrUnreachable) || !errors.Is(errPath, ErrUnreachable) {
					t.Fatalf("grid %dx%d %v->%v: unreachable but Cost err=%v Path err=%v",
						w, h, from, to, errCost, errPath)
				}
			}
			// Router on the same obstacle set (no modules; inject the grid).
			rd, errRd := routerDistanceOnGrid(w, h, blocked, from, to)
			if reachable {
				if errRd != nil || rd != want {
					t.Fatalf("grid %dx%d %v->%v: Router.Distance=%d err=%v, want %d",
						w, h, from, to, rd, errRd, want)
				}
			} else if !errors.Is(errRd, ErrUnreachable) {
				t.Fatalf("grid %dx%d %v->%v: Router.Distance err=%v, want ErrUnreachable", w, h, from, to, errRd)
			}
		}
	}
}

// routerDistanceOnGrid runs Router.Distance over a bare obstacle grid by
// wrapping it in a module-free layout with stuck cells.
func routerDistanceOnGrid(w, h int, blocked func(chip.Point) bool, from, to chip.Point) (int, error) {
	l := &chip.Layout{Width: w, Height: h}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if p := (chip.Point{X: x, Y: y}); blocked(p) {
				l.Stuck = append(l.Stuck, p)
			}
		}
	}
	return NewRouter(l).Distance(from, to)
}

// TestMatrixDistUnknownPair is the regression test for the silent-zero bug:
// a lookup naming a module outside the matrix must fail with ErrUnknownPair,
// never return distance 0.
func TestMatrixDistUnknownPair(t *testing.T) {
	m, err := NewRouter(chip.PCRLayout()).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Dist("M1", "no-such-module"); !errors.Is(err, ErrUnknownPair) {
		t.Errorf("Dist to unknown module: err = %v, want ErrUnknownPair", err)
	}
	if _, err := m.Dist("ghost", "M1"); !errors.Is(err, ErrUnknownPair) {
		t.Errorf("Dist from unknown module: err = %v, want ErrUnknownPair", err)
	}
	if d, err := m.Dist("M1", "M2"); err != nil || d <= 0 {
		t.Errorf("known pair: d=%d err=%v", d, err)
	}
	if _, ok := m.IndexOf("no-such-module"); ok {
		t.Error("IndexOf resolved an unknown module")
	}
}

// TestMatrixForCachesByGeometry pins the single-build guarantee: repeated
// MatrixFor calls on the same geometry (even via distinct Layout values)
// perform exactly one all-pairs flood; a distinct geometry pays exactly one
// more.
func TestMatrixForCachesByGeometry(t *testing.T) {
	PurgeMatrixCache()
	l := chip.PCRLayout()
	base := MatrixBuildCount()
	m1, err := MatrixFor(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := MatrixBuildCount() - base; got != 1 {
		t.Fatalf("first MatrixFor performed %d builds, want 1", got)
	}
	// A fresh Layout value with identical geometry is a cache hit sharing the
	// same Matrix instance.
	m2, err := MatrixFor(chip.PCRLayout())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("identical geometries did not share one cached Matrix")
	}
	if got := MatrixBuildCount() - base; got != 1 {
		t.Errorf("cache hit rebuilt the matrix: %d builds", got)
	}
	// A degraded geometry is a distinct entry.
	if _, err := MatrixFor(l.Degrade(map[string]bool{"M3": true}, nil)); err != nil {
		t.Fatal(err)
	}
	if got := MatrixBuildCount() - base; got != 2 {
		t.Errorf("distinct geometry: %d builds, want 2", got)
	}
	// Purging forces a rebuild.
	PurgeMatrixCache()
	if _, err := MatrixFor(l); err != nil {
		t.Fatal(err)
	}
	if got := MatrixBuildCount() - base; got != 3 {
		t.Errorf("after purge: %d builds, want 3", got)
	}
}

// TestFingerprintInjective spot-checks that routing-relevant differences
// change the fingerprint and irrelevant value-copies do not.
func TestFingerprintInjective(t *testing.T) {
	l := chip.PCRLayout()
	fp := Fingerprint(l)
	if Fingerprint(chip.PCRLayout()) != fp {
		t.Error("identical layouts fingerprint differently")
	}
	if Fingerprint(l.Degrade(map[string]bool{"M1": true}, nil)) == fp {
		t.Error("dead module did not change the fingerprint")
	}
	if Fingerprint(l.Degrade(nil, []chip.Point{{X: 6, Y: 6}})) == fp {
		t.Error("stuck electrode did not change the fingerprint")
	}
	wider := *l
	wider.Width++
	if Fingerprint(&wider) == fp {
		t.Error("width change did not change the fingerprint")
	}
	moved := *l
	moved.Modules = append([]chip.Module(nil), l.Modules...)
	moved.Modules[0].Port.X++
	if Fingerprint(&moved) == fp {
		t.Error("port move did not change the fingerprint")
	}
}

// TestMatrixForConcurrent hammers the cache from many goroutines; run with
// -race to verify the locking discipline.
func TestMatrixForConcurrent(t *testing.T) {
	PurgeMatrixCache()
	l := chip.PCRLayout()
	degraded := l.Degrade(map[string]bool{"M2": true}, nil)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			target := l
			if i%2 == 1 {
				target = degraded
			}
			_, err := MatrixFor(target)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
