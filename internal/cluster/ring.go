// Package cluster is the node-to-node tier of a dmfbd fleet: a consistent-
// hash ring (virtual nodes, seeded placement) that maps plan-artifact
// addresses and session keys to owner nodes, and a small HTTP client with a
// per-peer circuit breaker (reusing the fleet breaker) for fetching, pushing
// and delegating plan builds between nodes.
//
// The ring gives every node the same answer to "who owns this key" from
// nothing but the member list, which is what lets the cross-node single-
// flight work without coordination: all nodes hash a plan key to the same
// owner, the owner builds once (coalescing its own concurrent requests
// through the in-process flight group), and everyone else fetches the
// artifact. Virtual nodes keep placement balanced across heterogeneous
// member counts, and consistent hashing bounds rebalancing: a member
// joining or leaving an N-node ring moves ~1/N of the key space, never all
// of it (pinned by TestRingRebalanceBounded).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member vnode count. 128 vnodes keep the
// per-member share of the key space within a few percent of uniform for
// small fleets while the ring stays a few kilobytes.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over member IDs. Build with
// NewRing; derive changed memberships with With/Without (the ring itself is
// never mutated, so lookups need no locking).
type Ring struct {
	members []string
	vnodes  int
	hashes  []uint64 // sorted vnode hashes
	owners  []string // owners[i] owns hashes[i]
}

// NewRing builds a ring over the given member IDs with vnodesPerMember
// virtual nodes each (<= 0 selects DefaultVirtualNodes). Duplicate member
// IDs are collapsed. Placement is seeded by the member IDs alone, so every
// node that knows the same membership computes the identical ring.
func NewRing(members []string, vnodesPerMember int) *Ring {
	if vnodesPerMember <= 0 {
		vnodesPerMember = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		vnodes:  vnodesPerMember,
		hashes:  make([]uint64, 0, len(uniq)*vnodesPerMember),
		owners:  make([]string, 0, len(uniq)*vnodesPerMember),
	}
	type vnode struct {
		hash  uint64
		owner string
	}
	vns := make([]vnode, 0, len(uniq)*vnodesPerMember)
	for _, m := range uniq {
		for i := 0; i < vnodesPerMember; i++ {
			vns = append(vns, vnode{hash: hashKey(fmt.Sprintf("%s#%d", m, i)), owner: m})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].hash != vns[j].hash {
			return vns[i].hash < vns[j].hash
		}
		// Hash ties (astronomically rare with 64-bit FNV) break by owner ID
		// so placement stays deterministic across nodes.
		return vns[i].owner < vns[j].owner
	})
	for _, v := range vns {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
	return r
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Owner maps a key to its owning member: the first vnode clockwise of the
// key's hash. An empty ring owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.hashes) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the top of the ring
	}
	return r.owners[i]
}

// Successors returns up to n distinct members clockwise from the key's
// hash, starting with the key's owner. This is the key's replica set: the
// owner plus its n-1 ring successors, which is where the artifact tier
// places redundant copies so one node's disk loss never loses the only
// copy. n is clamped to the member count; an empty ring returns nil.
func (r *Ring) Successors(key string, n int) []string {
	if r == nil || len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.hashes) && len(out) < n; j++ {
		owner := r.owners[(start+j)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// With derives the ring with an additional member.
func (r *Ring) With(member string) *Ring {
	return NewRing(append(r.Members(), member), r.vnodes)
}

// Without derives the ring with a member removed.
func (r *Ring) Without(member string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			kept = append(kept, m)
		}
	}
	return NewRing(kept, r.vnodes)
}

// hashKey is 64-bit FNV-1a finished with the splitmix64 mixer — stable
// across platforms and releases (the ring's placement is part of the wire
// contract: all nodes must agree). Raw FNV of short, similar labels
// ("node-0#17") leaves the high bits correlated, which skews vnode
// placement badly; the finalizer restores avalanche so per-member shares
// stay near uniform.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
