package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("key-%d", i)
	}
	return ks
}

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"node-b", "node-a", "node-c"}
	r1 := NewRing(members, 64)
	r2 := NewRing([]string{"node-c", "node-a", "node-b", "node-a"}, 64) // order/dups must not matter
	for _, k := range keys(500) {
		o := r1.Owner(k)
		if o == "" {
			t.Fatalf("key %q unowned", k)
		}
		if o2 := r2.Owner(k); o2 != o {
			t.Fatalf("placement not membership-seeded: %q owned by %q vs %q", k, o, o2)
		}
	}
	if (&Ring{}).Owner("x") != "" {
		t.Fatal("empty ring owns keys")
	}
	var nilRing *Ring
	if nilRing.Owner("x") != "" {
		t.Fatal("nil ring owns keys")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, DefaultVirtualNodes)
	counts := map[string]int{}
	const n = 8000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	// With 128 vnodes per member, each of 4 members should hold its fair
	// quarter within a factor of two — the balance vnodes exist to provide.
	for m, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("member %s owns %d of %d keys (gross imbalance): %v", m, c, n, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members own keys: %v", len(counts), counts)
	}
}

// TestRingRebalanceBounded pins consistent hashing's defining property: a
// member joining or leaving an N-member ring moves only the ~1/N key share
// it gains or held — never a wholesale reshuffle (modulo hashing, which
// would move nearly everything).
func TestRingRebalanceBounded(t *testing.T) {
	base := NewRing([]string{"n0", "n1", "n2", "n3"}, DefaultVirtualNodes)
	ks := keys(10000)

	t.Run("join", func(t *testing.T) {
		grown := base.With("n4")
		moved := 0
		for _, k := range ks {
			before, after := base.Owner(k), grown.Owner(k)
			if before != after {
				moved++
				if after != "n4" {
					t.Fatalf("key %q moved %s→%s, not to the joining member", k, before, after)
				}
			}
		}
		// Expected share 1/5; assert < 2× expected.
		if limit := 2 * len(ks) / 5; moved >= limit {
			t.Fatalf("join moved %d of %d keys (limit %d)", moved, len(ks), limit)
		}
		if moved == 0 {
			t.Fatal("join moved nothing — new member owns no keys")
		}
	})

	t.Run("leave", func(t *testing.T) {
		shrunk := base.Without("n2")
		moved := 0
		for _, k := range ks {
			before, after := base.Owner(k), shrunk.Owner(k)
			if before != after {
				moved++
				if before != "n2" {
					t.Fatalf("key %q moved %s→%s though its owner stayed", k, before, after)
				}
			}
		}
		if limit := 2 * len(ks) / 4; moved >= limit {
			t.Fatalf("leave moved %d of %d keys (limit %d)", moved, len(ks), limit)
		}
		if moved == 0 {
			t.Fatal("leave moved nothing — departed member owned no keys")
		}
	})
}
