package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("key-%d", i)
	}
	return ks
}

func TestRingDeterministicAndComplete(t *testing.T) {
	members := []string{"node-b", "node-a", "node-c"}
	r1 := NewRing(members, 64)
	r2 := NewRing([]string{"node-c", "node-a", "node-b", "node-a"}, 64) // order/dups must not matter
	for _, k := range keys(500) {
		o := r1.Owner(k)
		if o == "" {
			t.Fatalf("key %q unowned", k)
		}
		if o2 := r2.Owner(k); o2 != o {
			t.Fatalf("placement not membership-seeded: %q owned by %q vs %q", k, o, o2)
		}
	}
	if (&Ring{}).Owner("x") != "" {
		t.Fatal("empty ring owns keys")
	}
	var nilRing *Ring
	if nilRing.Owner("x") != "" {
		t.Fatal("nil ring owns keys")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, DefaultVirtualNodes)
	counts := map[string]int{}
	const n = 8000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	// With 128 vnodes per member, each of 4 members should hold its fair
	// quarter within a factor of two — the balance vnodes exist to provide.
	for m, c := range counts {
		if c < n/8 || c > n/2 {
			t.Fatalf("member %s owns %d of %d keys (gross imbalance): %v", m, c, n, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members own keys: %v", len(counts), counts)
	}
}

// TestRingRebalanceBounded pins consistent hashing's defining property: a
// member joining or leaving an N-member ring moves only the ~1/N key share
// it gains or held — never a wholesale reshuffle (modulo hashing, which
// would move nearly everything).
func TestRingRebalanceBounded(t *testing.T) {
	base := NewRing([]string{"n0", "n1", "n2", "n3"}, DefaultVirtualNodes)
	ks := keys(10000)

	t.Run("join", func(t *testing.T) {
		grown := base.With("n4")
		moved := 0
		for _, k := range ks {
			before, after := base.Owner(k), grown.Owner(k)
			if before != after {
				moved++
				if after != "n4" {
					t.Fatalf("key %q moved %s→%s, not to the joining member", k, before, after)
				}
			}
		}
		// Expected share 1/5; assert < 2× expected.
		if limit := 2 * len(ks) / 5; moved >= limit {
			t.Fatalf("join moved %d of %d keys (limit %d)", moved, len(ks), limit)
		}
		if moved == 0 {
			t.Fatal("join moved nothing — new member owns no keys")
		}
	})

	t.Run("leave", func(t *testing.T) {
		shrunk := base.Without("n2")
		moved := 0
		for _, k := range ks {
			before, after := base.Owner(k), shrunk.Owner(k)
			if before != after {
				moved++
				if before != "n2" {
					t.Fatalf("key %q moved %s→%s though its owner stayed", k, before, after)
				}
			}
		}
		if limit := 2 * len(ks) / 4; moved >= limit {
			t.Fatalf("leave moved %d of %d keys (limit %d)", moved, len(ks), limit)
		}
		if moved == 0 {
			t.Fatal("leave moved nothing — departed member owned no keys")
		}
	})
}

// TestRingWithWithoutIdentity: With followed by Without of the same member
// must reproduce the original ring's key assignment exactly. This is what
// makes a failed join (or a node that joins and immediately dies) harmless:
// reverting membership reverts placement, with no residue.
func TestRingWithWithoutIdentity(t *testing.T) {
	base := NewRing([]string{"n0", "n1", "n2", "n3"}, DefaultVirtualNodes)
	roundtrip := base.With("nx").Without("nx")
	for _, k := range keys(10000) {
		if before, after := base.Owner(k), roundtrip.Owner(k); before != after {
			t.Fatalf("With∘Without not identity: key %q owned by %q, was %q", k, after, before)
		}
	}
	if got, want := roundtrip.Size(), base.Size(); got != want {
		t.Fatalf("roundtrip ring has %d members, want %d", got, want)
	}
}

// TestRingSuccessors pins the replica-set contract: distinct members, owner
// first, clamped to membership, nil-safe.
func TestRingSuccessors(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, DefaultVirtualNodes)
	for _, k := range keys(500) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("key %q: %d successors, want 3", k, len(succ))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %q: successors start at %q, owner is %q", k, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("key %q: duplicate member %q in %v", k, m, succ)
			}
			seen[m] = true
		}
	}
	if got := r.Successors("k", 99); len(got) != 4 {
		t.Fatalf("over-asking returned %d members, want all 4", len(got))
	}
	if got := r.Successors("k", 0); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	var nilRing *Ring
	if got := nilRing.Successors("k", 2); got != nil {
		t.Fatalf("nil ring returned %v", got)
	}
}
