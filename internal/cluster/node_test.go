package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != (Peer{ID: "a", URL: "http://h1:8080"}) ||
		peers[1] != (Peer{ID: "b", URL: "http://h2:8080"}) {
		t.Fatalf("peers = %+v", peers)
	}
	if p, err := ParsePeers(""); err != nil || p != nil {
		t.Fatalf("empty flag: %v %v", p, err)
	}
	for _, bad := range []string{"a", "=url", "a=", "a=u,b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewNode(Config{Self: "a", Peers: []Peer{{ID: "a", URL: "http://x"}}}); err == nil {
		t.Fatal("self among peers accepted")
	}
	if _, err := NewNode(Config{Self: "a", Peers: []Peer{{ID: "b", URL: "http://x"}, {ID: "b", URL: "http://y"}}}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

func TestNilNodeIsSingleNodeCluster(t *testing.T) {
	var n *Node
	if !n.Owns("anything") || n.Owner("k") != "" || n.Size() != 1 || n.Self() != "" {
		t.Fatal("nil node does not behave as a single-member cluster")
	}
	if _, err := n.Fetch(context.Background(), "x", "addr"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("nil node fetch: %v", err)
	}
}

func TestNodeFetchPushBuild(t *testing.T) {
	var gotPut atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/artifact/"):
			if strings.HasSuffix(r.URL.Path, "/cold") {
				http.NotFound(w, r)
				return
			}
			w.Write([]byte("artifact-bytes"))
		case r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/artifact/"):
			buf := make([]byte, 64)
			n, _ := r.Body.Read(buf)
			gotPut.Store(string(buf[:n]))
			w.WriteHeader(http.StatusNoContent)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/artifact/build":
			w.Write([]byte("built-artifact"))
		default:
			http.Error(w, "bad route", http.StatusBadRequest)
		}
	}))
	defer peer.Close()

	n, err := NewNode(Config{Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	data, err := n.Fetch(ctx, "p1", "warm")
	if err != nil || string(data) != "artifact-bytes" {
		t.Fatalf("Fetch: %q, %v", data, err)
	}
	if _, err := n.Fetch(ctx, "p1", "cold"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cold fetch: %v, want ErrNotFound", err)
	}
	if err := n.Push(ctx, "p1", "warm", []byte("pushed")); err != nil {
		t.Fatal(err)
	}
	if gotPut.Load() != "pushed" {
		t.Fatalf("peer saw %q", gotPut.Load())
	}
	built, err := n.BuildOn(ctx, "p1", []byte(`{"demand":4}`))
	if err != nil || string(built) != "built-artifact" {
		t.Fatalf("BuildOn: %q, %v", built, err)
	}
	if _, err := n.Fetch(ctx, "ghost", "warm"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
	if st := n.PeerStates(); st["p1"] != "closed" {
		t.Fatalf("peer states: %v", st)
	}
}

// TestNodeBreakerShieldsDownPeer: a dead peer opens its breaker after the
// threshold, after which calls fail fast (ErrPeerDown) without touching the
// network; 404s never charge the breaker.
func TestNodeBreakerShieldsDownPeer(t *testing.T) {
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer peer.Close()
	n, err := NewNode(Config{
		Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}},
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := n.Fetch(ctx, "p1", "addr"); !errors.Is(err, ErrPeerDown) {
			t.Fatalf("failing fetch %d: %v", i, err)
		}
	}
	if st := n.PeerStates(); st["p1"] != "open" {
		t.Fatalf("breaker %q after threshold failures", st["p1"])
	}
	before := hits.Load()
	if _, err := n.Fetch(ctx, "p1", "addr"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("open-breaker fetch: %v", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker still hit the network")
	}
}

// TestNodeBreakerHalfOpenRecovery: after the cooldown one probe goes
// through; success closes the breaker for everyone.
func TestNodeBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.Write([]byte("ok"))
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer peer.Close()
	n, err := NewNode(Config{
		Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}},
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := n.Fetch(ctx, "p1", "addr"); !errors.Is(err, ErrPeerDown) {
		t.Fatal(err)
	}
	healthy.Store(true)
	time.Sleep(20 * time.Millisecond)
	if _, err := n.Fetch(ctx, "p1", "addr"); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if st := n.PeerStates(); st["p1"] != "closed" {
		t.Fatalf("breaker %q after successful probe", st["p1"])
	}
}
