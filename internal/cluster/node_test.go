package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != (Peer{ID: "a", URL: "http://h1:8080"}) ||
		peers[1] != (Peer{ID: "b", URL: "http://h2:8080"}) {
		t.Fatalf("peers = %+v", peers)
	}
	if p, err := ParsePeers(""); err != nil || p != nil {
		t.Fatalf("empty flag: %v %v", p, err)
	}
	for _, bad := range []string{"a", "=url", "a=", "a=u,b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewNode(Config{Self: "a", Peers: []Peer{{ID: "a", URL: "http://x"}}}); err == nil {
		t.Fatal("self among peers accepted")
	}
	if _, err := NewNode(Config{Self: "a", Peers: []Peer{{ID: "b", URL: "http://x"}, {ID: "b", URL: "http://y"}}}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

func TestNilNodeIsSingleNodeCluster(t *testing.T) {
	var n *Node
	if !n.Owns("anything") || n.Owner("k") != "" || n.Size() != 1 || n.Self() != "" {
		t.Fatal("nil node does not behave as a single-member cluster")
	}
	if _, err := n.Fetch(context.Background(), "x", "addr"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("nil node fetch: %v", err)
	}
}

func TestNodeFetchPushBuild(t *testing.T) {
	var gotPut atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/artifact/"):
			if strings.HasSuffix(r.URL.Path, "/cold") {
				http.NotFound(w, r)
				return
			}
			w.Write([]byte("artifact-bytes"))
		case r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/artifact/"):
			buf := make([]byte, 64)
			n, _ := r.Body.Read(buf)
			gotPut.Store(string(buf[:n]))
			w.WriteHeader(http.StatusNoContent)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/artifact/build":
			w.Write([]byte("built-artifact"))
		default:
			http.Error(w, "bad route", http.StatusBadRequest)
		}
	}))
	defer peer.Close()

	n, err := NewNode(Config{Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	data, err := n.Fetch(ctx, "p1", "warm")
	if err != nil || string(data) != "artifact-bytes" {
		t.Fatalf("Fetch: %q, %v", data, err)
	}
	if _, err := n.Fetch(ctx, "p1", "cold"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cold fetch: %v, want ErrNotFound", err)
	}
	if err := n.Push(ctx, "p1", "warm", []byte("pushed")); err != nil {
		t.Fatal(err)
	}
	if gotPut.Load() != "pushed" {
		t.Fatalf("peer saw %q", gotPut.Load())
	}
	built, err := n.BuildOn(ctx, "p1", []byte(`{"demand":4}`))
	if err != nil || string(built) != "built-artifact" {
		t.Fatalf("BuildOn: %q, %v", built, err)
	}
	if _, err := n.Fetch(ctx, "ghost", "warm"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
	if st := n.PeerStates(); st["p1"] != "closed" {
		t.Fatalf("peer states: %v", st)
	}
}

// TestNodeBreakerShieldsDownPeer: a dead peer opens its breaker after the
// threshold, after which calls fail fast (ErrPeerDown) without touching the
// network; 404s never charge the breaker.
func TestNodeBreakerShieldsDownPeer(t *testing.T) {
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer peer.Close()
	n, err := NewNode(Config{
		Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}},
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := n.Fetch(ctx, "p1", "addr"); !errors.Is(err, ErrPeerDown) {
			t.Fatalf("failing fetch %d: %v", i, err)
		}
	}
	if st := n.PeerStates(); st["p1"] != "open" {
		t.Fatalf("breaker %q after threshold failures", st["p1"])
	}
	before := hits.Load()
	if _, err := n.Fetch(ctx, "p1", "addr"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("open-breaker fetch: %v", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker still hit the network")
	}
}

// TestNodeRuntimeMembershipSwap extends the bounded-rebalance property to
// the runtime atomic-swap path: AddPeer moves ≤ (1/N + ε) of 10k sampled
// keys (every moved key lands on the joiner), RemovePeer of that same peer
// restores the exact original assignment, and the peer map tracks the ring.
func TestNodeRuntimeMembershipSwap(t *testing.T) {
	n, err := NewNode(Config{Self: "n0", Peers: []Peer{
		{ID: "n1", URL: "http://h1"}, {ID: "n2", URL: "http://h2"}, {ID: "n3", URL: "http://h3"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const sample = 10000
	ks := make([]string, sample)
	before := make([]string, sample)
	for i := range ks {
		ks[i] = fmt.Sprintf("swap-key-%d", i)
		before[i] = n.Owner(ks[i])
	}

	if err := n.AddPeer(Peer{ID: "n4", URL: "http://h4"}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, k := range ks {
		if after := n.Owner(k); after != before[i] {
			moved++
			if after != "n4" {
				t.Fatalf("key %q moved %s→%s, not to the joining member", k, before[i], after)
			}
		}
	}
	// Expected share 1/5 of the keyspace; ε = one full expected share again.
	if limit := 2 * sample / 5; moved >= limit {
		t.Fatalf("join swap moved %d of %d keys (limit %d)", moved, sample, limit)
	}
	if moved == 0 {
		t.Fatal("join swap moved nothing")
	}
	if n.PeerURL("n4") != "http://h4" || n.Size() != 5 {
		t.Fatalf("peer map out of step with ring: url=%q size=%d", n.PeerURL("n4"), n.Size())
	}

	// Removing the joiner must restore the original assignment exactly —
	// the Node-level With∘Without identity.
	if err := n.RemovePeer("n4"); err != nil {
		t.Fatal(err)
	}
	for i, k := range ks {
		if after := n.Owner(k); after != before[i] {
			t.Fatalf("swap not identity after leave: key %q owned by %q, was %q", k, after, before[i])
		}
	}
	if n.PeerURL("n4") != "" || n.Size() != 4 {
		t.Fatalf("departed peer still resolvable: url=%q size=%d", n.PeerURL("n4"), n.Size())
	}
}

func TestNodeMembershipValidation(t *testing.T) {
	n, err := NewNode(Config{Self: "n0", Peers: []Peer{{ID: "n1", URL: "http://h1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddPeer(Peer{ID: "n0", URL: "http://self"}); err == nil {
		t.Fatal("joining self accepted")
	}
	if err := n.AddPeer(Peer{ID: "", URL: "http://x"}); err == nil {
		t.Fatal("empty peer ID accepted")
	}
	if err := n.RemovePeer("n0"); err == nil {
		t.Fatal("removing self accepted")
	}
	if err := n.RemovePeer("ghost"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("removing unknown peer: %v, want ErrUnknownPeer", err)
	}
	// Rejoin of a known ID is a URL update, not a ring change.
	if err := n.AddPeer(Peer{ID: "n1", URL: "http://h1-new/"}); err != nil {
		t.Fatal(err)
	}
	if n.PeerURL("n1") != "http://h1-new" || n.Size() != 2 {
		t.Fatalf("rejoin: url=%q size=%d", n.PeerURL("n1"), n.Size())
	}
	var nilNode *Node
	if err := nilNode.AddPeer(Peer{ID: "x", URL: "http://x"}); err == nil {
		t.Fatal("nil node accepted join")
	}
	if nilNode.Successors("k", 2) != nil || nilNode.Ring() != nil {
		t.Fatal("nil node has a ring")
	}
	nilNode.StartHeartbeat(time.Millisecond) // must not panic
	nilNode.StopHeartbeat()
}

// TestNodeHeartbeatMarksSuspect: with no request traffic at all, the
// heartbeat probes peers, opens a dead peer's breaker, and SuspectPeers
// reports it; once the peer heals, the half-open probe closes the breaker
// again within an interval or two.
func TestNodeHeartbeatMarksSuspect(t *testing.T) {
	var healthy atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz/live" {
			http.Error(w, "bad route", http.StatusBadRequest)
			return
		}
		if healthy.Load() {
			w.Write([]byte("ok"))
			return
		}
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	defer peer.Close()
	n, err := NewNode(Config{
		Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}},
		BreakerThreshold: 1, BreakerCooldown: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.StartHeartbeat(10 * time.Millisecond)
	defer n.StopHeartbeat()

	deadline := time.Now().Add(2 * time.Second)
	for len(n.SuspectPeers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead peer never marked suspect: states %v", n.PeerStates())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sus := n.SuspectPeers(); len(sus) != 1 || sus[0] != "p1" {
		t.Fatalf("suspects = %v", sus)
	}

	healthy.Store(true)
	for len(n.SuspectPeers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("healed peer never cleared: states %v", n.PeerStates())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNodeBreakerHalfOpenRecovery: after the cooldown one probe goes
// through; success closes the breaker for everyone.
func TestNodeBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.Write([]byte("ok"))
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer peer.Close()
	n, err := NewNode(Config{
		Self: "self", Peers: []Peer{{ID: "p1", URL: peer.URL}},
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := n.Fetch(ctx, "p1", "addr"); !errors.Is(err, ErrPeerDown) {
		t.Fatal(err)
	}
	healthy.Store(true)
	time.Sleep(20 * time.Millisecond)
	if _, err := n.Fetch(ctx, "p1", "addr"); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if st := n.PeerStates(); st["p1"] != "closed" {
		t.Fatalf("breaker %q after successful probe", st["p1"])
	}
}
