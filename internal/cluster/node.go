package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Typed cluster errors.
var (
	// ErrNotFound reports a peer that answered 404 — alive, but without the
	// requested artifact.
	ErrNotFound = errors.New("cluster: artifact not found on peer")
	// ErrPeerDown reports a peer that cannot be reached right now: its
	// circuit breaker is open, or the request failed at transport level.
	ErrPeerDown = errors.New("cluster: peer unavailable")
	// ErrUnknownPeer reports an owner ID outside the configured membership.
	ErrUnknownPeer = errors.New("cluster: unknown peer")
)

// Peer names one remote member: its node ID and HTTP base URL.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag form "id=http://host:port,id2=...".
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return peers, nil
}

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's ID; it joins the ring alongside Peers.
	Self string
	// Peers are the other members (Self must not appear among them).
	Peers []Peer
	// VirtualNodes tunes ring balance (default DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds each peer request (default 2s).
	Timeout time.Duration
	// BreakerThreshold / BreakerCooldown shape the per-peer circuit breaker
	// (defaults 3 failures / 250ms with capped doubling, matching the chip
	// breakers).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (tests inject in-process
	// listeners; nil uses http.DefaultTransport).
	Transport http.RoundTripper
}

// peerState is one remote member plus its breaker.
type peerState struct {
	url     string
	breaker *fleet.Breaker
}

// Node is one member's handle on the cluster: the shared ring plus breaker-
// guarded clients for every peer. Safe for concurrent use (the ring is
// immutable, breakers self-lock, http.Client is concurrency-safe).
type Node struct {
	self   string
	ring   *Ring
	peers  map[string]*peerState
	client *http.Client
}

// NewNode builds the node. A nil *Node is a valid single-node cluster
// (every key is local), so call sites can disable clustering by passing nil.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: node needs a non-empty self ID")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	members := []string{cfg.Self}
	peers := make(map[string]*peerState, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.ID == cfg.Self {
			return nil, fmt.Errorf("cluster: peer list contains self (%q)", p.ID)
		}
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %+v needs both ID and URL", p)
		}
		if _, dup := peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", p.ID)
		}
		peers[p.ID] = &peerState{
			url:     strings.TrimRight(p.URL, "/"),
			breaker: fleet.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, 0),
		}
		members = append(members, p.ID)
	}
	return &Node{
		self:  cfg.Self,
		ring:  NewRing(members, cfg.VirtualNodes),
		peers: peers,
		client: &http.Client{
			Timeout:   cfg.Timeout,
			Transport: cfg.Transport,
		},
	}, nil
}

// Self returns this node's ID ("" for a nil node).
func (n *Node) Self() string {
	if n == nil {
		return ""
	}
	return n.self
}

// Size returns the cluster member count (1 for a nil node: just us).
func (n *Node) Size() int {
	if n == nil {
		return 1
	}
	return n.ring.Size()
}

// Owner maps a key (artifact address, session key) to its owning member ID.
// A nil node owns everything itself.
func (n *Node) Owner(key string) string {
	if n == nil {
		return ""
	}
	return n.ring.Owner(key)
}

// Owns reports whether this node owns the key. Nil nodes own everything.
func (n *Node) Owns(key string) bool {
	if n == nil {
		return true
	}
	return n.ring.Owner(key) == n.self
}

// PeerStates snapshots every peer's breaker state, keyed by peer ID, for
// health reporting.
func (n *Node) PeerStates() map[string]string {
	if n == nil {
		return nil
	}
	states := make(map[string]string, len(n.peers))
	for id, p := range n.peers {
		states[id] = p.breaker.State()
	}
	return states
}

// PeerIDs returns the peer IDs, sorted.
func (n *Node) PeerIDs() []string {
	if n == nil {
		return nil
	}
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Fetch retrieves the artifact bytes stored under addr on the named peer.
// The caller owns verification: peer bytes are untrusted until
// artifact.DecodeVerified accepts them.
func (n *Node) Fetch(ctx context.Context, peerID, addr string) ([]byte, error) {
	return n.roundTrip(ctx, peerID, http.MethodGet, "/v1/artifact/"+addr, "", nil, "cluster.fetch")
}

// Push stores artifact bytes under addr on the named peer (best-effort
// replication toward the key's owner; the peer verifies before storing).
func (n *Node) Push(ctx context.Context, peerID, addr string, data []byte) error {
	_, err := n.roundTrip(ctx, peerID, http.MethodPut, "/v1/artifact/"+addr, "application/octet-stream", data, "cluster.push")
	return err
}

// BuildOn delegates a plan build to the key's owner: the JSON plan request
// is POSTed to the owner's build endpoint, which coalesces concurrent
// builds of the same key through its in-process flight group and answers
// with the encoded artifact. This is the cross-node single-flight: every
// non-owner blocks here (bounded by the client timeout) instead of building
// locally, so a cold key costs the fleet one build, not one per node.
func (n *Node) BuildOn(ctx context.Context, peerID string, planReq []byte) ([]byte, error) {
	return n.roundTrip(ctx, peerID, http.MethodPost, "/v1/artifact/build", "application/json", planReq, "cluster.build")
}

// roundTrip runs one breaker-guarded request against a peer. 2xx returns
// the body; 404 is ErrNotFound (the peer is alive — breaker success); other
// statuses and transport failures charge the breaker.
func (n *Node) roundTrip(ctx context.Context, peerID, method, path, contentType string, body []byte, metric string) ([]byte, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: no cluster configured", ErrUnknownPeer)
	}
	p, ok := n.peers[peerID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, peerID)
	}
	if !p.breaker.Allow() {
		obs.Inc(metric + ".breaker_rejected")
		return nil, fmt.Errorf("%w: %s breaker open", ErrPeerDown, peerID)
	}
	var reqBody io.Reader
	if body != nil {
		reqBody = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.url+path, reqBody)
	if err != nil {
		p.breaker.Success() // caller bug, not peer health
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		if p.breaker.Failure() {
			obs.Inc("cluster.breaker_opens")
		}
		obs.Inc(metric + ".errors")
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerDown, peerID, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if p.breaker.Failure() {
			obs.Inc("cluster.breaker_opens")
		}
		obs.Inc(metric + ".errors")
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerDown, peerID, err)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		p.breaker.Success()
		obs.Inc(metric + ".ok")
		return data, nil
	case resp.StatusCode == http.StatusNotFound:
		p.breaker.Success() // alive, just cold
		obs.Inc(metric + ".not_found")
		return nil, fmt.Errorf("%w: %s", ErrNotFound, peerID)
	default:
		// 4xx/5xx both charge the breaker: a peer rejecting our artifacts
		// or failing builds is not a peer worth hammering.
		if p.breaker.Failure() {
			obs.Inc("cluster.breaker_opens")
		}
		obs.Inc(metric + ".errors")
		return nil, fmt.Errorf("%w: %s answered %d: %s", ErrPeerDown, peerID, resp.StatusCode, strings.TrimSpace(string(data)))
	}
}
