package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Typed cluster errors.
var (
	// ErrNotFound reports a peer that answered 404 — alive, but without the
	// requested artifact.
	ErrNotFound = errors.New("cluster: artifact not found on peer")
	// ErrPeerDown reports a peer that cannot be reached right now: its
	// circuit breaker is open, or the request failed at transport level.
	ErrPeerDown = errors.New("cluster: peer unavailable")
	// ErrUnknownPeer reports an owner ID outside the configured membership.
	ErrUnknownPeer = errors.New("cluster: unknown peer")
)

// ReplicaHeader marks an artifact PUT as originating from the replication
// protocol (Push) rather than a client: the receiver stores the verified
// bytes without fanning out to its own successors, which is what keeps
// owner→successor replication from cascading forever.
const ReplicaHeader = "X-Dmfbd-Replica"

// Peer names one remote member: its node ID and HTTP base URL.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag form "id=http://host:port,id2=...".
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return peers, nil
}

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's ID; it joins the ring alongside Peers.
	Self string
	// Peers are the other members (Self must not appear among them).
	Peers []Peer
	// VirtualNodes tunes ring balance (default DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds each peer request (default 2s).
	Timeout time.Duration
	// BreakerThreshold / BreakerCooldown shape the per-peer circuit breaker
	// (defaults 3 failures / 250ms with capped doubling, matching the chip
	// breakers).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (tests inject in-process
	// listeners; nil uses http.DefaultTransport).
	Transport http.RoundTripper
}

// peerState is one remote member plus its breaker.
type peerState struct {
	url     string
	breaker *fleet.Breaker
}

// Node is one member's handle on the cluster: the shared ring plus breaker-
// guarded clients for every peer. Safe for concurrent use: the ring is an
// immutable value swapped atomically on membership change, the peer map is
// guarded by mu, breakers self-lock and http.Client is concurrency-safe.
type Node struct {
	self   string
	vnodes int
	ring   atomic.Pointer[Ring]
	client *http.Client

	// breaker shape inherited by peers added at runtime.
	breakerThreshold int
	breakerCooldown  time.Duration

	mu    sync.RWMutex
	peers map[string]*peerState

	hbMu   sync.Mutex
	hbStop chan struct{}
}

// NewNode builds the node. A nil *Node is a valid single-node cluster
// (every key is local), so call sites can disable clustering by passing nil.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: node needs a non-empty self ID")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	n := &Node{
		self:             cfg.Self,
		vnodes:           cfg.VirtualNodes,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		peers:            make(map[string]*peerState, len(cfg.Peers)),
		client: &http.Client{
			Timeout:   cfg.Timeout,
			Transport: cfg.Transport,
		},
	}
	members := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p.ID == cfg.Self {
			return nil, fmt.Errorf("cluster: peer list contains self (%q)", p.ID)
		}
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %+v needs both ID and URL", p)
		}
		if _, dup := n.peers[p.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", p.ID)
		}
		n.peers[p.ID] = &peerState{
			url:     strings.TrimRight(p.URL, "/"),
			breaker: fleet.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, 0),
		}
		members = append(members, p.ID)
	}
	n.ring.Store(NewRing(members, cfg.VirtualNodes))
	return n, nil
}

// Ring returns the node's current view of the consistent-hash ring (nil for
// a nil node). The ring is immutable; membership changes swap in a new one.
func (n *Node) Ring() *Ring {
	if n == nil {
		return nil
	}
	return n.ring.Load()
}

// AddPeer joins a member to the ring at runtime: the peer gains a breaker-
// guarded client and the ring is atomically replaced by its With-derived
// successor, so concurrent lookups see either the old or the new placement,
// never a torn one. Rejoining an existing peer ID only updates its URL.
func (n *Node) AddPeer(p Peer) error {
	if n == nil {
		return errors.New("cluster: no cluster configured")
	}
	if p.ID == "" || p.URL == "" {
		return fmt.Errorf("cluster: peer %+v needs both ID and URL", p)
	}
	if p.ID == n.self {
		return fmt.Errorf("cluster: cannot join self (%q)", p.ID)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ps, ok := n.peers[p.ID]; ok {
		ps.url = strings.TrimRight(p.URL, "/")
		return nil
	}
	n.peers[p.ID] = &peerState{
		url:     strings.TrimRight(p.URL, "/"),
		breaker: fleet.NewBreaker(n.breakerThreshold, n.breakerCooldown, 0),
	}
	n.ring.Store(n.ring.Load().With(p.ID))
	obs.Inc("cluster.members_joined")
	return nil
}

// RemovePeer removes a member from the ring at runtime (atomic ring swap,
// peer client dropped). Removing an unknown peer is an error; the node can
// never remove itself.
func (n *Node) RemovePeer(id string) error {
	if n == nil {
		return errors.New("cluster: no cluster configured")
	}
	if id == n.self {
		return fmt.Errorf("cluster: cannot remove self (%q)", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.peers[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, id)
	}
	delete(n.peers, id)
	n.ring.Store(n.ring.Load().Without(id))
	obs.Inc("cluster.members_left")
	return nil
}

// PeerURL resolves a peer's base URL ("" when unknown). Routing layers use
// it to build 307 redirect targets for migrated sessions.
func (n *Node) PeerURL(id string) string {
	if n == nil {
		return ""
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if p, ok := n.peers[id]; ok {
		return p.url
	}
	return ""
}

// Self returns this node's ID ("" for a nil node).
func (n *Node) Self() string {
	if n == nil {
		return ""
	}
	return n.self
}

// Size returns the cluster member count (1 for a nil node: just us).
func (n *Node) Size() int {
	if n == nil {
		return 1
	}
	return n.ring.Load().Size()
}

// Owner maps a key (artifact address, session key) to its owning member ID.
// A nil node owns everything itself.
func (n *Node) Owner(key string) string {
	if n == nil {
		return ""
	}
	return n.ring.Load().Owner(key)
}

// Owns reports whether this node owns the key. Nil nodes own everything.
func (n *Node) Owns(key string) bool {
	if n == nil {
		return true
	}
	return n.ring.Load().Owner(key) == n.self
}

// Successors returns the key's replica set: up to count distinct members
// clockwise from the key, owner first. A nil node returns nil (everything is
// local anyway).
func (n *Node) Successors(key string, count int) []string {
	if n == nil {
		return nil
	}
	return n.ring.Load().Successors(key, count)
}

// PeerStates snapshots every peer's breaker state, keyed by peer ID, for
// health reporting.
func (n *Node) PeerStates() map[string]string {
	if n == nil {
		return nil
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	states := make(map[string]string, len(n.peers))
	for id, p := range n.peers {
		states[id] = p.breaker.State()
	}
	return states
}

// PeerIDs returns the peer IDs, sorted.
func (n *Node) PeerIDs() []string {
	if n == nil {
		return nil
	}
	n.mu.RLock()
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	n.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// SuspectPeers returns the peers whose breaker is not closed — peers that
// failed recently and have not yet answered a half-open probe. The heartbeat
// keeps this fresh without any request traffic.
func (n *Node) SuspectPeers() []string {
	if n == nil {
		return nil
	}
	var out []string
	for id, state := range n.PeerStates() {
		if state != "closed" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Ping probes a peer's liveness endpoint through its circuit breaker: a
// reachable peer closes the breaker (Success), an unreachable one charges it
// exactly like a failed artifact round trip. An open breaker admits one
// probe per cooldown (the fleet breaker's half-open contract), so a dead
// peer costs one connection attempt per interval, not one per request.
func (n *Node) Ping(ctx context.Context, peerID string) error {
	_, err := n.roundTrip(ctx, peerID, http.MethodGet, "/healthz/live", "", nil, nil, "cluster.ping")
	return err
}

// StartHeartbeat probes every peer each interval until StopHeartbeat (or a
// second StartHeartbeat) is called. It replaces "the static -peers list is
// assumed alive forever": breaker state — surfaced by PeerStates,
// SuspectPeers and /healthz/ready — converges to the truth within one
// interval even when no request traffic flows toward a peer.
func (n *Node) StartHeartbeat(interval time.Duration) {
	if n == nil || interval <= 0 {
		return
	}
	n.hbMu.Lock()
	defer n.hbMu.Unlock()
	if n.hbStop != nil {
		close(n.hbStop)
	}
	stop := make(chan struct{})
	n.hbStop = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			for _, id := range n.PeerIDs() {
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				n.Ping(ctx, id)
				cancel()
			}
		}
	}()
}

// StopHeartbeat stops the heartbeat loop started by StartHeartbeat.
func (n *Node) StopHeartbeat() {
	if n == nil {
		return
	}
	n.hbMu.Lock()
	defer n.hbMu.Unlock()
	if n.hbStop != nil {
		close(n.hbStop)
		n.hbStop = nil
	}
}

// Fetch retrieves the artifact bytes stored under addr on the named peer.
// The caller owns verification: peer bytes are untrusted until
// artifact.DecodeVerified accepts them.
func (n *Node) Fetch(ctx context.Context, peerID, addr string) ([]byte, error) {
	return n.roundTrip(ctx, peerID, http.MethodGet, "/v1/artifact/"+addr, "", nil, nil, "cluster.fetch")
}

// Push stores artifact bytes under addr on the named peer (best-effort
// replication within the key's replica set; the peer verifies before
// storing). The replica header tells the receiver this copy already comes
// from the replication protocol, so it stores without fanning out again —
// otherwise owner→successor pushes would cascade.
func (n *Node) Push(ctx context.Context, peerID, addr string, data []byte) error {
	_, err := n.roundTrip(ctx, peerID, http.MethodPut, "/v1/artifact/"+addr, "application/octet-stream", data, map[string]string{ReplicaHeader: "1"}, "cluster.push")
	return err
}

// BuildOn delegates a plan build to the key's owner: the JSON plan request
// is POSTed to the owner's build endpoint, which coalesces concurrent
// builds of the same key through its in-process flight group and answers
// with the encoded artifact. This is the cross-node single-flight: every
// non-owner blocks here (bounded by the client timeout) instead of building
// locally, so a cold key costs the fleet one build, not one per node.
func (n *Node) BuildOn(ctx context.Context, peerID string, planReq []byte) ([]byte, error) {
	return n.roundTrip(ctx, peerID, http.MethodPost, "/v1/artifact/build", "application/json", planReq, nil, "cluster.build")
}

// Adopt ships a migrating session's WAL-frame snapshot to the named peer,
// which replays it onto a verified bit-identical timeline before answering
// 2xx. The source must not delete its copy until Adopt returns nil.
func (n *Node) Adopt(ctx context.Context, peerID, session string, frames []byte) error {
	_, err := n.roundTrip(ctx, peerID, http.MethodPost,
		"/v1/session/"+url.PathEscape(session)+"/adopt", "application/octet-stream", frames, nil, "cluster.adopt")
	return err
}

// roundTrip runs one breaker-guarded request against a peer. 2xx returns
// the body; 404 is ErrNotFound (the peer is alive — breaker success); other
// statuses and transport failures charge the breaker.
func (n *Node) roundTrip(ctx context.Context, peerID, method, path, contentType string, body []byte, hdr map[string]string, metric string) ([]byte, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: no cluster configured", ErrUnknownPeer)
	}
	n.mu.RLock()
	p, ok := n.peers[peerID]
	var baseURL string
	if ok {
		baseURL = p.url
	}
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, peerID)
	}
	if !p.breaker.Allow() {
		obs.Inc(metric + ".breaker_rejected")
		return nil, fmt.Errorf("%w: %s breaker open", ErrPeerDown, peerID)
	}
	var reqBody io.Reader
	if body != nil {
		reqBody = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, baseURL+path, reqBody)
	if err != nil {
		p.breaker.Success() // caller bug, not peer health
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		if p.breaker.Failure() {
			obs.Inc("cluster.breaker_opens")
		}
		obs.Inc(metric + ".errors")
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerDown, peerID, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if p.breaker.Failure() {
			obs.Inc("cluster.breaker_opens")
		}
		obs.Inc(metric + ".errors")
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerDown, peerID, err)
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		p.breaker.Success()
		obs.Inc(metric + ".ok")
		return data, nil
	case resp.StatusCode == http.StatusNotFound:
		p.breaker.Success() // alive, just cold
		obs.Inc(metric + ".not_found")
		return nil, fmt.Errorf("%w: %s", ErrNotFound, peerID)
	default:
		// 4xx/5xx both charge the breaker: a peer rejecting our artifacts
		// or failing builds is not a peer worth hammering.
		if p.breaker.Failure() {
			obs.Inc("cluster.breaker_opens")
		}
		obs.Inc(metric + ".errors")
		return nil, fmt.Errorf("%w: %s answered %d: %s", ErrPeerDown, peerID, resp.StatusCode, strings.TrimSpace(string(data)))
	}
}
