package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestMapOrderedResults(t *testing.T) {
	withProcs(t, 8)
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	out, err := Map(items, func(i, v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	withProcs(t, 8)
	items := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	fn := func(i int, s string) (string, error) { return fmt.Sprintf("%d:%s", i, s), nil }
	seq, err := MapN(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 100} {
		par, err := MapN(w, items, fn)
		if err != nil {
			t.Fatalf("MapN(%d): %v", w, err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", w, i, par[i], seq[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(nil, func(i int, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %v", out, err)
	}
	out, err = Map([]int{7}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 8 {
		t.Fatalf("single input: %v, %v", out, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	withProcs(t, 8)
	items := make([]int, 64)
	errLow, errHigh := errors.New("low"), errors.New("high")
	// Index 3 fails slowly, index 40 fails fast: the returned error must
	// still be the lowest-indexed failure among those that ran.
	_, err := MapN(8, items, func(i, _ int) (int, error) {
		switch i {
		case 3:
			time.Sleep(5 * time.Millisecond)
			return 0, errLow
		case 40:
			return 0, errHigh
		default:
			time.Sleep(time.Millisecond)
			return 0, nil
		}
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want %v (lowest failing index)", err, errLow)
	}
}

func TestMapCancelsOnFirstError(t *testing.T) {
	withProcs(t, 4)
	items := make([]int, 10_000)
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := MapN(4, items, func(i, _ int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(100 * time.Microsecond)
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n == int64(len(items)) {
		t.Errorf("all %d items ran despite early error; cancellation ineffective", n)
	}
}

func TestForEach(t *testing.T) {
	withProcs(t, 8)
	var sum atomic.Int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i + 1
	}
	if err := ForEach(items, func(_, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 5050 {
		t.Errorf("sum = %d, want 5050", sum.Load())
	}
	boom := errors.New("boom")
	if err := ForEachN(4, items, func(i, _ int) error {
		if i == 17 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("ForEachN error = %v, want boom", err)
	}
}

func TestWorkers(t *testing.T) {
	withProcs(t, 4)
	if w := Workers(100); w != 4 {
		t.Errorf("Workers(100) = %d, want 4", w)
	}
	if w := Workers(2); w != 2 {
		t.Errorf("Workers(2) = %d, want 2", w)
	}
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
}
