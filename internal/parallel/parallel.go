// Package parallel is the repository's small deterministic fan-out
// primitive: a bounded worker pool over an input slice with input-ordered
// results and first-error cancellation.
//
// The population sweeps of internal/experiments and internal/synth are
// embarrassingly parallel — thousands of independent (ratio, demand, scheme)
// evaluations — but their outputs must stay byte-identical to the historical
// sequential implementations (EXPERIMENTS.md records paper-vs-measured
// values, and floating-point accumulation is order-sensitive). Map therefore
// never exposes completion order: results land in a pre-sized slice at their
// input index, and callers reduce them in input order, which reproduces the
// sequential accumulation exactly.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default worker count for n items: GOMAXPROCS capped by
// n, and at least 1. Passing workers <= 1 to MapN/ForEachN selects the plain
// sequential loop, which is also the escape hatch the experiments package
// exposes as its Sequential flag.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every item with Workers(len(items)) workers and returns
// the results in input order. See MapN for the error contract.
func Map[I, O any](items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	return MapN(Workers(len(items)), items, fn)
}

// MapN applies fn to every item using at most workers goroutines and returns
// the results in input order; out[i] is fn(i, items[i]).
//
// On failure MapN returns a nil slice and the error of the lowest-indexed
// item among those that failed. The first error observed also cancels the
// pool: workers finish their in-flight item and stop picking up new ones, so
// fn may not be invoked for every index. fn must be safe for concurrent
// invocation on distinct indices.
func MapN[I, O any](workers int, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i := range items {
			o, err := fn(i, items[i])
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next input index to claim
		stop    atomic.Bool  // set on first error; workers drain out
		mu      sync.Mutex   // guards errIdx / firstErr
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				o, err := fn(i, items[i])
				if err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = o
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

// ForEach applies fn to every item with Workers(len(items)) workers. See
// ForEachN.
func ForEach[I any](items []I, fn func(i int, item I) error) error {
	return ForEachN(Workers(len(items)), items, fn)
}

// ForEachN is MapN without per-item results: it applies fn to every item
// using at most workers goroutines and returns the error of the
// lowest-indexed failing item (cancelling the pool on first failure).
func ForEachN[I any](workers int, items []I, fn func(i int, item I) error) error {
	_, err := MapN(workers, items, func(i int, item I) (struct{}, error) {
		return struct{}{}, fn(i, item)
	})
	return err
}
