package exec

import (
	"errors"
	"testing"

	"repro/internal/chip"
	"repro/internal/route"
)

// TestWalledOffMixerErrors surrounds a mixer's port with stuck electrodes:
// binding the schedule must fail with the typed routing error, not panic and
// not silently produce a plan through the wall.
func TestWalledOffMixerErrors(t *testing.T) {
	s := pcrSchedule(t, 8, 3)
	l := chip.PCRLayout()
	m1, ok := l.Module("M1")
	if !ok {
		t.Fatal("PCR layout has no M1")
	}
	p := m1.Port
	// Wall off the port's free neighbours (the module block covers the rest).
	walled := l.Degrade(nil, []chip.Point{
		{X: p.X - 1, Y: p.Y}, {X: p.X + 1, Y: p.Y},
		{X: p.X, Y: p.Y - 1}, {X: p.X, Y: p.Y + 1},
	})
	if _, err := Execute(s, walled); !errors.Is(err, route.ErrUnreachable) {
		t.Errorf("Execute on walled-off mixer: err = %v, want route.ErrUnreachable", err)
	}
}

// TestStuckPortErrors sticks the electrode under a module port itself.
func TestStuckPortErrors(t *testing.T) {
	s := pcrSchedule(t, 8, 3)
	l := chip.PCRLayout()
	out, ok := l.Module("OUT")
	if !ok {
		t.Fatal("PCR layout has no OUT")
	}
	stuck := l.Degrade(nil, []chip.Point{out.Port})
	if _, err := Execute(s, stuck); err == nil {
		t.Error("Execute with a stuck output port succeeded")
	}
}

// TestOverlappingModulesRejected pins the layout validator's typed error.
func TestOverlappingModulesRejected(t *testing.T) {
	l := &chip.Layout{Width: 10, Height: 10, Modules: []chip.Module{
		{Kind: chip.Mixer, Name: "M1", Fluid: -1,
			Rect: chip.Rect{X: 1, Y: 1, W: 2, H: 2}, Port: chip.Point{X: 0, Y: 1}},
		{Kind: chip.Mixer, Name: "M2", Fluid: -1,
			Rect: chip.Rect{X: 2, Y: 2, W: 2, H: 2}, Port: chip.Point{X: 4, Y: 2}},
	}}
	if err := l.Validate(); !errors.Is(err, chip.ErrOverlap) {
		t.Errorf("Validate on overlapping modules: err = %v, want chip.ErrOverlap", err)
	}
}

// TestStorageExhaustedTyped re-pins ErrStorageOverflow through the streaming
// demand that needs every PCR storage cell.
func TestStorageExhaustedTyped(t *testing.T) {
	s := pcrSchedule(t, 20, 3) // needs q=5
	for n := 0; n < 5; n++ {
		l, err := chip.PCRLayoutWithStorage(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Execute(s, l); !errors.Is(err, ErrStorageOverflow) {
			t.Errorf("storage=%d: err = %v, want ErrStorageOverflow", n, err)
		}
	}
}
