// Package exec binds a mixing-forest schedule to a chip layout and derives
// the droplet-transport plan: which droplet moves where in every cycle, what
// each move costs in electrode actuations, and which storage cell parks each
// waiting droplet. This is the machinery behind §5 of the DAC 2014 paper,
// which compares the streaming engine (386 actuations for the D=20 PCR
// forest) against repeated baseline mixing (980 actuations) on the Fig. 5
// floorplan.
//
// All transport costs come from the dense routing kernel of internal/route:
// one cached cost-matrix per distinct layout geometry, index-addressed O(1)
// lookups in the binding loops, and loud route.ErrUnknownPair failures on
// any lookup naming a module the matrix does not cover (the legacy map form
// silently yielded distance 0, which could crown an unreachable module
// "nearest").
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/internal/chip"
	"repro/internal/forest"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ratio"
	"repro/internal/route"
	"repro/internal/sched"
)

// Purpose classifies a droplet movement.
type Purpose int8

const (
	// Dispense moves a fresh droplet from a fluid reservoir to a mixer.
	Dispense Purpose = iota
	// Transfer moves a droplet mixer-to-mixer (consumed the next cycle).
	Transfer
	// Store parks a droplet in a storage cell.
	Store
	// Fetch retrieves a stored droplet into a mixer.
	Fetch
	// Discard routes a waste droplet to a waste reservoir.
	Discard
	// Emit delivers a target droplet to the output port.
	Emit
)

func (p Purpose) String() string {
	switch p {
	case Dispense:
		return "dispense"
	case Transfer:
		return "transfer"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	case Discard:
		return "discard"
	case Emit:
		return "emit"
	default:
		return fmt.Sprintf("Purpose(%d)", int8(p))
	}
}

// Move is one droplet transport.
type Move struct {
	// Cycle is the schedule cycle the move serves (the cycle a consumed
	// droplet must arrive in, or the producing cycle for outgoing moves).
	Cycle int
	// From and To are module names.
	From, To string
	// Cost is the electrode-actuation cost (shortest-path length).
	Cost int
	// Purpose classifies the move.
	Purpose Purpose
	// Content identifies the droplet's exact composition (a CF-vector key):
	// the cross-contamination analysis groups moves by it.
	Content string
}

// Plan is a complete transport plan for one schedule on one layout.
type Plan struct {
	// Moves lists every droplet transport in cycle order.
	Moves []Move
	// TotalCost is the total number of electrode actuations (§5's metric).
	TotalCost int
	// StorageCells maps each stored droplet (producer task ID, consumer task
	// ID) to the storage module used.
	StorageCells map[[2]int]string
	// Flow is the symmetric module-to-module traffic matrix, reusable for
	// placement optimization.
	Flow chip.Flow
}

// Binding errors.
var (
	ErrNoMixerModules  = errors.New("exec: layout has fewer mixers than the schedule uses")
	ErrNoReservoir     = errors.New("exec: no reservoir for a required fluid")
	ErrNoWaste         = errors.New("exec: layout has no waste reservoir")
	ErrNoOutput        = errors.New("exec: layout has no output port")
	ErrStorageOverflow = errors.New("exec: schedule needs more storage cells than the layout offers")
)

// Execute derives the transport plan of schedule s on layout l.
//
// Binding rules: schedule mixer k runs on the k-th Mixer module; fluid i is
// dispensed from the reservoir declaring that fluid; a droplet consumed in
// the cycle right after production transfers mixer-to-mixer, otherwise it is
// parked in a storage cell (chosen nearest-first among free cells) and
// fetched later; unconsumed non-target droplets go to the nearest waste
// reservoir; target droplets go to the output port.
func Execute(s *sched.Schedule, l *chip.Layout) (*Plan, error) {
	defer obs.StartTimer("exec.execute_ms")()
	mixers := l.OfKind(chip.Mixer)
	if len(mixers) < s.Mixers {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNoMixerModules, len(mixers), s.Mixers)
	}
	m, err := route.MatrixFor(l)
	if err != nil {
		return nil, err
	}
	binding := make([]int, s.Mixers)
	for i := range binding {
		binding[i] = i
	}
	p, err := executeBound(s, l, binding, m)
	if err != nil {
		return nil, err
	}
	obsPlan("exec.executes", p)
	return p, nil
}

// ExecuteOptimized searches over all bindings of the schedule's logical
// mixers onto the layout's physical mixer modules and returns the cheapest
// transport plan (ties resolved to the first minimal binding in
// permutation-enumeration order, matching the historical brute force).
//
// The search is branch-and-bound over partial binding cost: the cost matrix
// is computed once per layout geometry (hoisted out of the permutation
// loop via route.MatrixFor), every partial binding carries an admissible
// lower bound — exact dispense/transfer/emit/discard terms for the bound
// mixers plus best-case storage legs — and subtrees that cannot beat the
// incumbent are pruned. First-level branches (the physical module of
// logical mixer 1) run in parallel via internal/parallel, each with a
// private incumbent, and merge deterministically in branch order.
func ExecuteOptimized(s *sched.Schedule, l *chip.Layout) (*Plan, error) {
	return ExecuteOptimizedCtx(context.Background(), s, l)
}

// ExecuteOptimizedCtx is the context-aware binding search: cancellation is
// checked at every branch boundary of the branch-and-bound (each partial-
// binding expansion), so a server can abandon an expensive search within one
// branch. An abandoned search returns an error wrapping cancel.ErrCanceled.
func ExecuteOptimizedCtx(ctx context.Context, s *sched.Schedule, l *chip.Layout) (*Plan, error) {
	defer obs.StartTimer("exec.execute_optimized_ms")()
	mixers := l.OfKind(chip.Mixer)
	if len(mixers) < s.Mixers {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNoMixerModules, len(mixers), s.Mixers)
	}
	m, err := route.MatrixFor(l)
	if err != nil {
		return nil, err
	}
	if s.Mixers == 0 {
		return executeBound(s, l, nil, m)
	}
	tr, err := newBindingTraffic(s, l, m)
	if err != nil {
		return nil, err
	}

	branches := make([]int, len(mixers))
	for i := range branches {
		branches[i] = i
	}
	results, err := parallel.Map(branches, func(_ int, first int) (*Plan, error) {
		b := &bbSearch{ctx: ctx, s: s, l: l, m: m, tr: tr, used: make([]bool, len(mixers))}
		b.perm = append(b.perm, first)
		b.used[first] = true
		b.lb = append(b.lb, tr.bindCost(b.perm, len(b.perm)-1))
		if err := b.dfs(); err != nil {
			return nil, err
		}
		return b.best, nil
	})
	if err != nil {
		return nil, err
	}
	var best *Plan
	for _, p := range results {
		if p != nil && (best == nil || p.TotalCost < best.TotalCost) {
			best = p
		}
	}
	obsPlan("exec.executes_optimized", best)
	return best, nil
}

// obsPlan exports one derived transport plan's headline numbers.
func obsPlan(counter string, p *Plan) {
	if p == nil || !obs.Enabled() {
		return
	}
	obs.Inc(counter)
	obs.Add("exec.actuations", int64(p.TotalCost))
	obs.Observe("exec.moves", float64(len(p.Moves)))
}

// bindingTraffic is the binding-independent traffic census of a schedule,
// precomputed once per ExecuteOptimized call: how many droplets each
// logical mixer exchanges with reservoirs, other logical mixers, storage,
// waste and the output. Whether a hand-off is a direct transfer or a
// store+fetch pair depends only on schedule cycles — never on the binding —
// so the census is exact for every permutation.
type bindingTraffic struct {
	m       *route.Matrix
	physIdx []int   // physical mixer -> matrix index
	outIdx  int     // output port matrix index
	disp    [][]int // per logical mixer: flattened (reservoir matrix index, count) pairs
	trans   []int   // trans[k1*(K+1)+k2] hand-off count between logical mixers (k1 <= k2)
	emit    []int   // per logical mixer: target emissions
	discard []int   // per logical mixer: waste discards
	storeIO []int   // per logical mixer: store legs out + fetch legs in
	minWst  []int   // per physical mixer: distance to its nearest waste
	minCell []int   // per physical mixer: distance to its nearest storage cell
}

func newBindingTraffic(s *sched.Schedule, l *chip.Layout, m *route.Matrix) (*bindingTraffic, error) {
	mixers := l.OfKind(chip.Mixer)
	k := s.Mixers
	tr := &bindingTraffic{
		m:       m,
		physIdx: make([]int, len(mixers)),
		disp:    make([][]int, k+1),
		trans:   make([]int, (k+1)*(k+1)),
		emit:    make([]int, k+1),
		discard: make([]int, k+1),
		storeIO: make([]int, k+1),
		minWst:  make([]int, len(mixers)),
		minCell: make([]int, len(mixers)),
	}
	lookup := func(name string) (int, error) {
		i, ok := m.IndexOf(name)
		if !ok {
			return 0, fmt.Errorf("%w: %q", route.ErrUnknownPair, name)
		}
		return i, nil
	}
	var err error
	for i, mod := range mixers {
		if tr.physIdx[i], err = lookup(mod.Name); err != nil {
			return nil, err
		}
	}
	if outs := l.OfKind(chip.Output); len(outs) > 0 {
		if tr.outIdx, err = lookup(outs[0].Name); err != nil {
			return nil, err
		}
	} else {
		return nil, ErrNoOutput
	}
	wastes := l.OfKind(chip.Waste)
	if len(wastes) == 0 {
		return nil, ErrNoWaste
	}
	storage := l.OfKind(chip.Storage)
	for i := range mixers {
		pi := tr.physIdx[i]
		best := int(^uint(0) >> 1)
		for _, w := range wastes {
			wi, err := lookup(w.Name)
			if err != nil {
				return nil, err
			}
			if d := m.At(pi, wi); d < best {
				best = d
			}
		}
		tr.minWst[i] = best
		best = 0
		if len(storage) > 0 {
			best = int(^uint(0) >> 1)
			for _, q := range storage {
				qi, err := lookup(q.Name)
				if err != nil {
					return nil, err
				}
				if d := m.At(pi, qi); d < best {
					best = d
				}
			}
		}
		tr.minCell[i] = best
	}
	resIdx := map[int]int{}
	for _, r := range l.OfKind(chip.Reservoir) {
		ri, err := lookup(r.Name)
		if err != nil {
			return nil, err
		}
		resIdx[r.Fluid] = ri
	}

	storedPair := map[[2]int]bool{}
	for _, sd := range sched.StoredDroplets(s) {
		if sd.From <= sd.To {
			storedPair[[2]int{sd.Producer.ID, sd.Consumer.ID}] = true
		}
	}
	dispCount := make([]map[int]int, k+1)
	for _, t := range s.Forest.Tasks {
		a := s.At(t)
		for _, src := range t.In {
			switch src.Kind {
			case forest.Input:
				ri, ok := resIdx[src.Fluid]
				if !ok {
					return nil, fmt.Errorf("%w: fluid %d", ErrNoReservoir, src.Fluid)
				}
				if dispCount[a.Mixer] == nil {
					dispCount[a.Mixer] = map[int]int{}
				}
				dispCount[a.Mixer][ri]++
			case forest.FromTask:
				p := s.At(src.Task)
				if storedPair[[2]int{src.Task.ID, t.ID}] {
					tr.storeIO[p.Mixer]++
					tr.storeIO[a.Mixer]++
				} else {
					lo, hi := p.Mixer, a.Mixer
					if lo > hi {
						lo, hi = hi, lo
					}
					tr.trans[lo*(k+1)+hi]++
				}
			}
		}
		tr.emit[a.Mixer] += t.Targets
		tr.discard[a.Mixer] += t.FreeOutputs()
	}
	// Flatten the dispense census deterministically (sorted by reservoir
	// matrix index).
	for km := range tr.disp {
		counts := dispCount[km]
		if counts == nil {
			continue
		}
		ris := make([]int, 0, len(counts))
		for ri := range counts {
			ris = append(ris, ri)
		}
		sort.Ints(ris)
		flat := make([]int, 0, 2*len(ris))
		for _, ri := range ris {
			flat = append(flat, ri, counts[ri])
		}
		tr.disp[km] = flat
	}
	return tr, nil
}

// bindCost returns the admissible cost contribution of binding logical mixer
// p+1 (0-based position p in perm) given the earlier bindings: exact
// dispense/emit/discard terms, exact transfer terms to already-bound
// mixers, plus best-case storage legs (each store or fetch leg is at least
// the distance to the mixer's nearest cell). Every term lower-bounds the
// corresponding executeBound cost, so pruning on it is exact.
func (tr *bindingTraffic) bindCost(perm []int, p int) int {
	// BFS distances are symmetric and the census stores transfer counts
	// under (min,max) logical order, so one lookup direction suffices.
	// Self hand-offs (trans[k][k]) cost At(pi,pi) = 0 and are skipped.
	k := p + 1 // 1-based logical mixer being bound
	i := perm[p]
	pi := tr.physIdx[i]
	c := 0
	disp := tr.disp[k]
	for x := 0; x < len(disp); x += 2 {
		c += disp[x+1] * tr.m.At(disp[x], pi)
	}
	kk := len(tr.emit) // K+1
	for kp := 1; kp <= p; kp++ {
		lo, hi := kp, k
		if lo > hi {
			lo, hi = hi, lo
		}
		if n := tr.trans[lo*kk+hi]; n > 0 {
			c += n * tr.m.At(tr.physIdx[perm[kp-1]], pi)
		}
	}
	c += tr.emit[k] * tr.m.At(pi, tr.outIdx)
	c += tr.discard[k] * tr.minWst[i]
	c += tr.storeIO[k] * tr.minCell[i]
	return c
}

type bbSearch struct {
	ctx  context.Context
	s    *sched.Schedule
	l    *chip.Layout
	m    *route.Matrix
	tr   *bindingTraffic
	perm []int
	used []bool
	lb   []int // prefix lower bounds; lb[i] = contribution of perm[i]
	best *Plan
}

// dfs explores completions of the current partial binding in lexicographic
// order, pruning subtrees whose lower bound cannot beat the incumbent.
// Every call is one branch boundary — the search's cancellation point.
func (b *bbSearch) dfs() error {
	if err := cancel.Check(b.ctx); err != nil {
		return fmt.Errorf("exec: binding search: %w", err)
	}
	if len(b.perm) == b.s.Mixers {
		plan, err := executeBound(b.s, b.l, b.perm, b.m)
		if err != nil {
			return err
		}
		if b.best == nil || plan.TotalCost < b.best.TotalCost {
			b.best = plan
		}
		return nil
	}
	bound := 0
	for _, c := range b.lb {
		bound += c
	}
	for i := range b.used {
		if b.used[i] {
			continue
		}
		b.perm = append(b.perm, i)
		add := b.tr.bindCost(b.perm, len(b.perm)-1)
		if b.best != nil && bound+add >= b.best.TotalCost {
			b.perm = b.perm[:len(b.perm)-1]
			continue
		}
		b.used[i] = true
		b.lb = append(b.lb, add)
		if err := b.dfs(); err != nil {
			return err
		}
		b.lb = b.lb[:len(b.lb)-1]
		b.perm = b.perm[:len(b.perm)-1]
		b.used[i] = false
	}
	return nil
}

// executeBound derives the plan with logical mixer k running on physical
// mixer module binding[k-1], costing every move through the dense matrix m
// (built for l's geometry).
func executeBound(s *sched.Schedule, l *chip.Layout, binding []int, m *route.Matrix) (*Plan, error) {
	mixers := l.OfKind(chip.Mixer)
	lookup := func(name string) (int, error) {
		i, ok := m.IndexOf(name)
		if !ok {
			return 0, fmt.Errorf("%w: %q", route.ErrUnknownPair, name)
		}
		return i, nil
	}
	reservoirs := map[int]int{} // fluid -> matrix index
	resName := map[int]string{}
	var err error
	for _, r := range l.OfKind(chip.Reservoir) {
		if reservoirs[r.Fluid], err = lookup(r.Name); err != nil {
			return nil, err
		}
		resName[r.Fluid] = r.Name
	}
	wastes := l.OfKind(chip.Waste)
	if len(wastes) == 0 {
		return nil, ErrNoWaste
	}
	wasteIdx := make([]int, len(wastes))
	for i, w := range wastes {
		if wasteIdx[i], err = lookup(w.Name); err != nil {
			return nil, err
		}
	}
	outputs := l.OfKind(chip.Output)
	if len(outputs) == 0 {
		return nil, ErrNoOutput
	}
	out := outputs[0].Name
	outIdx, err := lookup(out)
	if err != nil {
		return nil, err
	}
	storage := l.OfKind(chip.Storage)
	storageIdx := make([]int, len(storage))
	for i, q := range storage {
		if storageIdx[i], err = lookup(q.Name); err != nil {
			return nil, err
		}
	}
	mixIdx := make([]int, len(binding))
	for k, bi := range binding {
		if mixIdx[k], err = lookup(mixers[bi].Name); err != nil {
			return nil, err
		}
	}
	mixerName := func(k int) string { return mixers[binding[k-1]].Name }
	nearestWaste := func(fromIdx int) (string, int) {
		best, bestIdx, bestCost := wastes[0].Name, wasteIdx[0], int(^uint(0)>>1)
		for i, w := range wastes {
			if d := m.At(fromIdx, wasteIdx[i]); d < bestCost {
				best, bestIdx, bestCost = w.Name, wasteIdx[i], d
			}
		}
		return best, bestIdx
	}

	plan := &Plan{StorageCells: map[[2]int]string{}, Flow: chip.Flow{}}
	n := s.Forest.Target().N()
	add := func(cycle int, from, to string, fromIdx, toIdx int, p Purpose, content string) {
		c := m.At(fromIdx, toIdx)
		plan.Moves = append(plan.Moves, Move{Cycle: cycle, From: from, To: to, Cost: c, Purpose: p, Content: content})
		plan.TotalCost += c
		plan.Flow.Add(from, to, 1)
	}

	// Assign storage cells to waiting droplets by interval: droplets whose
	// storage intervals overlap need distinct cells (greedy first-fit over
	// cells ordered near the producer works because intervals are released
	// in consumption order).
	type interval struct {
		sd      sched.StoredDroplet
		cell    string
		cellIdx int
	}
	var waiting []interval
	for _, sd := range sched.StoredDroplets(s) {
		if sd.From <= sd.To {
			waiting = append(waiting, interval{sd: sd})
		}
	}
	sort.Slice(waiting, func(i, j int) bool {
		if waiting[i].sd.From != waiting[j].sd.From {
			return waiting[i].sd.From < waiting[j].sd.From
		}
		return waiting[i].sd.Producer.ID < waiting[j].sd.Producer.ID
	})
	busyUntil := map[string]int{}
	cellIdxByName := map[string]int{}
	for i := range waiting {
		iv := &waiting[i]
		prodIdx := mixIdx[s.At(iv.sd.Producer).Mixer-1]
		// Candidate cells: free for the whole interval, nearest first.
		type cand struct {
			name string
			idx  int
			d    int
		}
		var cands []cand
		for qi, q := range storage {
			if busyUntil[q.Name] < iv.sd.From {
				cands = append(cands, cand{q.Name, storageIdx[qi], m.At(prodIdx, storageIdx[qi])})
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: at cycle %d (have %d cells)", ErrStorageOverflow, iv.sd.From, len(storage))
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].name < cands[b].name
		})
		iv.cell, iv.cellIdx = cands[0].name, cands[0].idx
		busyUntil[iv.cell] = iv.sd.To
		cellIdxByName[iv.cell] = iv.cellIdx
		plan.StorageCells[[2]int{iv.sd.Producer.ID, iv.sd.Consumer.ID}] = iv.cell
	}

	// Input moves: each task's two input droplets arrive at its mixer.
	for _, t := range s.Forest.Tasks {
		a := s.At(t)
		dst := mixerName(a.Mixer)
		dstIdx := mixIdx[a.Mixer-1]
		for _, src := range t.In {
			switch src.Kind {
			case forest.Input:
				ri, ok := reservoirs[src.Fluid]
				if !ok {
					return nil, fmt.Errorf("%w: fluid %d", ErrNoReservoir, src.Fluid)
				}
				add(a.Cycle, resName[src.Fluid], dst, ri, dstIdx, Dispense, ratio.Unit(src.Fluid, n).Key())
			case forest.FromTask:
				p := s.At(src.Task)
				from := mixerName(p.Mixer)
				fromIdx := mixIdx[p.Mixer-1]
				content := src.Task.Vec.Key()
				if cell, stored := plan.StorageCells[[2]int{src.Task.ID, t.ID}]; stored {
					ci := cellIdxByName[cell]
					add(p.Cycle, from, cell, fromIdx, ci, Store, content)
					add(a.Cycle, cell, dst, ci, dstIdx, Fetch, content)
				} else {
					add(a.Cycle, from, dst, fromIdx, dstIdx, Transfer, content)
				}
			}
		}
	}
	// Output moves: targets to the output port, free outputs to waste.
	for _, t := range s.Forest.Tasks {
		a := s.At(t)
		from := mixerName(a.Mixer)
		fromIdx := mixIdx[a.Mixer-1]
		for k := 0; k < t.Targets; k++ {
			add(a.Cycle, from, out, fromIdx, outIdx, Emit, t.Vec.Key())
		}
		for k := 0; k < t.FreeOutputs(); k++ {
			w, wi := nearestWaste(fromIdx)
			add(a.Cycle, from, w, fromIdx, wi, Discard, t.Vec.Key())
		}
	}
	sort.SliceStable(plan.Moves, func(i, j int) bool { return plan.Moves[i].Cycle < plan.Moves[j].Cycle })
	return plan, nil
}

// StorageCellsUsed returns how many distinct storage cells the plan touches.
func (p *Plan) StorageCellsUsed() int {
	set := map[string]bool{}
	for _, c := range p.StorageCells {
		set[c] = true
	}
	return len(set)
}
