// Package exec binds a mixing-forest schedule to a chip layout and derives
// the droplet-transport plan: which droplet moves where in every cycle, what
// each move costs in electrode actuations, and which storage cell parks each
// waiting droplet. This is the machinery behind §5 of the DAC 2014 paper,
// which compares the streaming engine (386 actuations for the D=20 PCR
// forest) against repeated baseline mixing (980 actuations) on the Fig. 5
// floorplan.
package exec

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/forest"
	"repro/internal/ratio"
	"repro/internal/route"
	"repro/internal/sched"
)

// Purpose classifies a droplet movement.
type Purpose int8

const (
	// Dispense moves a fresh droplet from a fluid reservoir to a mixer.
	Dispense Purpose = iota
	// Transfer moves a droplet mixer-to-mixer (consumed the next cycle).
	Transfer
	// Store parks a droplet in a storage cell.
	Store
	// Fetch retrieves a stored droplet into a mixer.
	Fetch
	// Discard routes a waste droplet to a waste reservoir.
	Discard
	// Emit delivers a target droplet to the output port.
	Emit
)

func (p Purpose) String() string {
	switch p {
	case Dispense:
		return "dispense"
	case Transfer:
		return "transfer"
	case Store:
		return "store"
	case Fetch:
		return "fetch"
	case Discard:
		return "discard"
	case Emit:
		return "emit"
	default:
		return fmt.Sprintf("Purpose(%d)", int8(p))
	}
}

// Move is one droplet transport.
type Move struct {
	// Cycle is the schedule cycle the move serves (the cycle a consumed
	// droplet must arrive in, or the producing cycle for outgoing moves).
	Cycle int
	// From and To are module names.
	From, To string
	// Cost is the electrode-actuation cost (shortest-path length).
	Cost int
	// Purpose classifies the move.
	Purpose Purpose
	// Content identifies the droplet's exact composition (a CF-vector key):
	// the cross-contamination analysis groups moves by it.
	Content string
}

// Plan is a complete transport plan for one schedule on one layout.
type Plan struct {
	// Moves lists every droplet transport in cycle order.
	Moves []Move
	// TotalCost is the total number of electrode actuations (§5's metric).
	TotalCost int
	// StorageCells maps each stored droplet (producer task ID, consumer task
	// ID) to the storage module used.
	StorageCells map[[2]int]string
	// Flow is the symmetric module-to-module traffic matrix, reusable for
	// placement optimization.
	Flow chip.Flow
}

// Binding errors.
var (
	ErrNoMixerModules  = errors.New("exec: layout has fewer mixers than the schedule uses")
	ErrNoReservoir     = errors.New("exec: no reservoir for a required fluid")
	ErrNoWaste         = errors.New("exec: layout has no waste reservoir")
	ErrNoOutput        = errors.New("exec: layout has no output port")
	ErrStorageOverflow = errors.New("exec: schedule needs more storage cells than the layout offers")
)

// Execute derives the transport plan of schedule s on layout l.
//
// Binding rules: schedule mixer k runs on the k-th Mixer module; fluid i is
// dispensed from the reservoir declaring that fluid; a droplet consumed in
// the cycle right after production transfers mixer-to-mixer, otherwise it is
// parked in a storage cell (chosen nearest-first among free cells) and
// fetched later; unconsumed non-target droplets go to the nearest waste
// reservoir; target droplets go to the output port.
func Execute(s *sched.Schedule, l *chip.Layout) (*Plan, error) {
	mixers := l.OfKind(chip.Mixer)
	if len(mixers) < s.Mixers {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNoMixerModules, len(mixers), s.Mixers)
	}
	binding := make([]int, s.Mixers)
	for i := range binding {
		binding[i] = i
	}
	return executeBound(s, l, binding)
}

// ExecuteOptimized searches over all bindings of the schedule's logical
// mixers onto the layout's physical mixer modules and returns the
// cheapest transport plan. With k logical and n physical mixers the search
// is P(n, k) plans — fine for the handful of mixers real chips carry.
func ExecuteOptimized(s *sched.Schedule, l *chip.Layout) (*Plan, error) {
	mixers := l.OfKind(chip.Mixer)
	if len(mixers) < s.Mixers {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNoMixerModules, len(mixers), s.Mixers)
	}
	var best *Plan
	perm := make([]int, 0, s.Mixers)
	used := make([]bool, len(mixers))
	var rec func() error
	rec = func() error {
		if len(perm) == s.Mixers {
			plan, err := executeBound(s, l, perm)
			if err != nil {
				return err
			}
			if best == nil || plan.TotalCost < best.TotalCost {
				best = plan
			}
			return nil
		}
		for i := range mixers {
			if used[i] {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			if err := rec(); err != nil {
				return err
			}
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return best, nil
}

// executeBound derives the plan with logical mixer k running on physical
// mixer module binding[k-1].
func executeBound(s *sched.Schedule, l *chip.Layout, binding []int) (*Plan, error) {
	cost, err := route.CostMatrix(l)
	if err != nil {
		return nil, err
	}

	mixers := l.OfKind(chip.Mixer)
	reservoirs := map[int]string{}
	for _, m := range l.OfKind(chip.Reservoir) {
		reservoirs[m.Fluid] = m.Name
	}
	wastes := l.OfKind(chip.Waste)
	if len(wastes) == 0 {
		return nil, ErrNoWaste
	}
	outputs := l.OfKind(chip.Output)
	if len(outputs) == 0 {
		return nil, ErrNoOutput
	}
	out := outputs[0].Name
	storage := l.OfKind(chip.Storage)

	mixerName := func(k int) string { return mixers[binding[k-1]].Name }
	nearest := func(from string, candidates []chip.Module) string {
		best, bestCost := candidates[0].Name, int(^uint(0)>>1)
		for _, c := range candidates {
			if d := cost[[2]string{from, c.Name}]; d < bestCost {
				best, bestCost = c.Name, d
			}
		}
		return best
	}

	plan := &Plan{StorageCells: map[[2]int]string{}, Flow: chip.Flow{}}
	n := s.Forest.Target().N()
	add := func(cycle int, from, to string, p Purpose, content string) {
		c := cost[[2]string{from, to}]
		plan.Moves = append(plan.Moves, Move{Cycle: cycle, From: from, To: to, Cost: c, Purpose: p, Content: content})
		plan.TotalCost += c
		plan.Flow.Add(from, to, 1)
	}

	// Assign storage cells to waiting droplets by interval: droplets whose
	// storage intervals overlap need distinct cells (greedy first-fit over
	// cells ordered near the producer works because intervals are released
	// in consumption order).
	type interval struct {
		sd   sched.StoredDroplet
		cell string
	}
	var waiting []interval
	for _, sd := range sched.StoredDroplets(s) {
		if sd.From <= sd.To {
			waiting = append(waiting, interval{sd: sd})
		}
	}
	sort.Slice(waiting, func(i, j int) bool {
		if waiting[i].sd.From != waiting[j].sd.From {
			return waiting[i].sd.From < waiting[j].sd.From
		}
		return waiting[i].sd.Producer.ID < waiting[j].sd.Producer.ID
	})
	busyUntil := map[string]int{}
	for i := range waiting {
		iv := &waiting[i]
		prodMixer := mixerName(s.At(iv.sd.Producer).Mixer)
		// Candidate cells: free for the whole interval, nearest first.
		type cand struct {
			name string
			d    int
		}
		var cands []cand
		for _, q := range storage {
			if busyUntil[q.Name] < iv.sd.From {
				cands = append(cands, cand{q.Name, cost[[2]string{prodMixer, q.Name}]})
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: at cycle %d (have %d cells)", ErrStorageOverflow, iv.sd.From, len(storage))
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].name < cands[b].name
		})
		iv.cell = cands[0].name
		busyUntil[iv.cell] = iv.sd.To
		plan.StorageCells[[2]int{iv.sd.Producer.ID, iv.sd.Consumer.ID}] = iv.cell
	}

	// Input moves: each task's two input droplets arrive at its mixer.
	for _, t := range s.Forest.Tasks {
		a := s.At(t)
		dst := mixerName(a.Mixer)
		for _, src := range t.In {
			switch src.Kind {
			case forest.Input:
				r, ok := reservoirs[src.Fluid]
				if !ok {
					return nil, fmt.Errorf("%w: fluid %d", ErrNoReservoir, src.Fluid)
				}
				add(a.Cycle, r, dst, Dispense, ratio.Unit(src.Fluid, n).Key())
			case forest.FromTask:
				p := s.At(src.Task)
				from := mixerName(p.Mixer)
				content := src.Task.Vec.Key()
				if cell, stored := plan.StorageCells[[2]int{src.Task.ID, t.ID}]; stored {
					add(p.Cycle, from, cell, Store, content)
					add(a.Cycle, cell, dst, Fetch, content)
				} else {
					add(a.Cycle, from, dst, Transfer, content)
				}
			}
		}
	}
	// Output moves: targets to the output port, free outputs to waste.
	for _, t := range s.Forest.Tasks {
		a := s.At(t)
		from := mixerName(a.Mixer)
		for k := 0; k < t.Targets; k++ {
			add(a.Cycle, from, out, Emit, t.Vec.Key())
		}
		for k := 0; k < t.FreeOutputs(); k++ {
			add(a.Cycle, from, nearest(from, wastes), Discard, t.Vec.Key())
		}
	}
	sort.SliceStable(plan.Moves, func(i, j int) bool { return plan.Moves[i].Cycle < plan.Moves[j].Cycle })
	return plan, nil
}

// StorageCellsUsed returns how many distinct storage cells the plan touches.
func (p *Plan) StorageCellsUsed() int {
	set := map[string]bool{}
	for _, c := range p.StorageCells {
		set[c] = true
	}
	return len(set)
}
