package exec

import (
	"errors"
	"testing"

	"repro/internal/chip"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/ratio"
	"repro/internal/route"
	"repro/internal/sched"
)

func pcrSchedule(t testing.TB, demand, mixers int) *sched.Schedule {
	t.Helper()
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatalf("minmix.Build: %v", err)
	}
	f, err := forest.Build(g, demand)
	if err != nil {
		t.Fatalf("forest.Build: %v", err)
	}
	s, err := sched.SRS(f, mixers)
	if err != nil {
		t.Fatalf("SRS: %v", err)
	}
	return s
}

func TestExecutePCRForest(t *testing.T) {
	s := pcrSchedule(t, 20, 3)
	plan, err := Execute(s, chip.PCRLayout())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if plan.TotalCost <= 0 {
		t.Fatal("zero transport cost")
	}
	// Droplet accounting: 25 dispenses, 20 emissions, 5 discards; internal
	// hand-offs appear as transfer or store+fetch pairs.
	counts := map[Purpose]int{}
	for _, m := range plan.Moves {
		counts[m.Purpose]++
	}
	if counts[Dispense] != 25 {
		t.Errorf("dispenses = %d, want 25", counts[Dispense])
	}
	if counts[Emit] != 20 {
		t.Errorf("emissions = %d, want 20", counts[Emit])
	}
	if counts[Discard] != 5 {
		t.Errorf("discards = %d, want 5", counts[Discard])
	}
	if counts[Store] != counts[Fetch] {
		t.Errorf("stores (%d) != fetches (%d)", counts[Store], counts[Fetch])
	}
	// Internal edges = transfers + stored hand-offs.
	internal := counts[Transfer] + counts[Store]
	if internal != 29 {
		t.Errorf("internal hand-offs = %d, want 29", internal)
	}
	// The schedule needs q=5; the layout has exactly 5 cells.
	if used := plan.StorageCellsUsed(); used > 5 {
		t.Errorf("used %d storage cells, layout has 5", used)
	}
}

// TestStreamingBeatsRepeatedBaseline reproduces the §5 comparison: for
// D = 20 target droplets of the PCR master-mix on the Fig. 5-style layout,
// the mixing-forest engine actuates far fewer electrodes than repeating the
// base MM tree 10 times (the paper reports 386 vs 980 — a 2.5x gap).
func TestStreamingBeatsRepeatedBaseline(t *testing.T) {
	l := chip.PCRLayout()
	// Streaming engine: one D=20 forest pass.
	sForest := pcrSchedule(t, 20, 3)
	forestPlan, err := Execute(sForest, l)
	if err != nil {
		t.Fatalf("Execute(forest): %v", err)
	}
	// Repeated baseline: the base tree once, times 10 passes.
	g, _ := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	sBase, err := sched.OMS(g, 3)
	if err != nil {
		t.Fatalf("OMS: %v", err)
	}
	basePlan, err := Execute(sBase, l)
	if err != nil {
		t.Fatalf("Execute(base): %v", err)
	}
	repeated := 10 * basePlan.TotalCost
	if forestPlan.TotalCost >= repeated {
		t.Errorf("forest engine %d actuations, repeated baseline %d — expected the engine to win",
			forestPlan.TotalCost, repeated)
	}
	ratio := float64(repeated) / float64(forestPlan.TotalCost)
	t.Logf("actuations: forest=%d repeated=%d (%.2fx; paper: 386 vs 980, 2.54x)",
		forestPlan.TotalCost, repeated, ratio)
	if ratio < 1.5 {
		t.Errorf("improvement ratio %.2f, expected at least 1.5x", ratio)
	}
}

func TestStorageOverflowDetected(t *testing.T) {
	s := pcrSchedule(t, 20, 3) // needs q=5
	l, err := chip.PCRLayoutWithStorage(4)
	if err != nil {
		t.Fatalf("PCRLayoutWithStorage: %v", err)
	}
	if _, err := Execute(s, l); !errors.Is(err, ErrStorageOverflow) {
		t.Errorf("want ErrStorageOverflow, got %v", err)
	}
}

func TestMissingModules(t *testing.T) {
	s := pcrSchedule(t, 4, 2)
	// Strip output port.
	l := chip.PCRLayout()
	var noOut chip.Layout
	noOut.Width, noOut.Height = l.Width, l.Height
	for _, m := range l.Modules {
		if m.Kind != chip.Output {
			noOut.Modules = append(noOut.Modules, m)
		}
	}
	if _, err := Execute(s, &noOut); !errors.Is(err, ErrNoOutput) {
		t.Errorf("want ErrNoOutput, got %v", err)
	}
	// Too few mixers.
	s3 := pcrSchedule(t, 4, 3)
	var oneMixer chip.Layout
	oneMixer.Width, oneMixer.Height = l.Width, l.Height
	seen := 0
	for _, m := range l.Modules {
		if m.Kind == chip.Mixer {
			seen++
			if seen > 1 {
				continue
			}
		}
		oneMixer.Modules = append(oneMixer.Modules, m)
	}
	if _, err := Execute(s3, &oneMixer); !errors.Is(err, ErrNoMixerModules) {
		t.Errorf("want ErrNoMixerModules, got %v", err)
	}
}

func TestMovesSortedAndCostsConsistent(t *testing.T) {
	s := pcrSchedule(t, 16, 3)
	l := chip.PCRLayout()
	plan, err := Execute(s, l)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sum := 0
	last := 0
	for _, m := range plan.Moves {
		if m.Cycle < last {
			t.Fatal("moves not cycle-sorted")
		}
		last = m.Cycle
		sum += m.Cost
		if m.Cost < 0 {
			t.Fatalf("negative cost move %+v", m)
		}
	}
	if sum != plan.TotalCost {
		t.Errorf("TotalCost %d != sum of moves %d", plan.TotalCost, sum)
	}
}

func TestFlowSymmetricAccumulation(t *testing.T) {
	s := pcrSchedule(t, 8, 2)
	plan, err := Execute(s, chip.PCRLayout())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	total := 0
	for k, n := range plan.Flow {
		if k[0] > k[1] {
			t.Errorf("flow key %v not canonical", k)
		}
		total += n
	}
	if total != len(plan.Moves) {
		t.Errorf("flow total %d != move count %d", total, len(plan.Moves))
	}
}

func TestPlacementOptimizerReducesCost(t *testing.T) {
	s := pcrSchedule(t, 20, 3)
	l := chip.PCRLayout()
	plan, err := Execute(s, l)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	matrix := route.CostMatrix
	before, err := matrix(l)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	startCost := chip.PlacementCost(plan.Flow, before)
	opt, optCost, err := chip.OptimizePlacement(l, plan.Flow, matrix, 400, 1)
	if err != nil {
		t.Fatalf("OptimizePlacement: %v", err)
	}
	if optCost > startCost {
		t.Errorf("optimizer worsened cost: %d -> %d", startCost, optCost)
	}
	if err := opt.Validate(); err != nil {
		t.Errorf("optimized layout invalid: %v", err)
	}
	// Re-executing on the optimized layout must still work and not cost more.
	plan2, err := Execute(s, opt)
	if err != nil {
		t.Fatalf("Execute(optimized): %v", err)
	}
	t.Logf("placement: original %d, optimized %d actuations", plan.TotalCost, plan2.TotalCost)
}

func TestExecuteOptimizedNeverWorse(t *testing.T) {
	s := pcrSchedule(t, 20, 3)
	l := chip.PCRLayout()
	plain, err := Execute(s, l)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	opt, err := ExecuteOptimized(s, l)
	if err != nil {
		t.Fatalf("ExecuteOptimized: %v", err)
	}
	if opt.TotalCost > plain.TotalCost {
		t.Errorf("optimized binding %d worse than identity %d", opt.TotalCost, plain.TotalCost)
	}
	t.Logf("mixer binding: identity %d, optimized %d actuations", plain.TotalCost, opt.TotalCost)
}

func TestExecuteOnAutoLayout(t *testing.T) {
	// A 10-fluid protocol on an auto-generated floorplan, end to end.
	g, err := minmix.Build(ratio.MustParse("25:5:5:5:5:13:13:25:1:159"))
	if err != nil {
		t.Fatalf("minmix.Build: %v", err)
	}
	f, err := forest.Build(g, 16)
	if err != nil {
		t.Fatalf("forest.Build: %v", err)
	}
	mc := sched.Mlb(g)
	s, err := sched.SRS(f, mc)
	if err != nil {
		t.Fatalf("SRS: %v", err)
	}
	l, err := chip.AutoLayout(10, mc, sched.StorageUnits(s))
	if err != nil {
		t.Fatalf("AutoLayout: %v", err)
	}
	plan, err := Execute(s, l)
	if err != nil {
		t.Fatalf("Execute on auto layout: %v", err)
	}
	if plan.TotalCost <= 0 {
		t.Error("no transport cost")
	}
}
