package exec

import (
	"reflect"
	"testing"

	"repro/internal/chip"
	"repro/internal/route"
	"repro/internal/sched"
)

// bruteForceOptimized is the legacy mixer-binding search: enumerate every
// permutation of logical-onto-physical mixers in lexicographic order and keep
// the first strict minimum. The branch-and-bound ExecuteOptimized must
// reproduce its winner exactly.
func bruteForceOptimized(s *sched.Schedule, l *chip.Layout) (*Plan, error) {
	mixers := l.OfKind(chip.Mixer)
	m, err := route.MatrixFor(l)
	if err != nil {
		return nil, err
	}
	var best *Plan
	perm := make([]int, 0, s.Mixers)
	used := make([]bool, len(mixers))
	var rec func() error
	rec = func() error {
		if len(perm) == s.Mixers {
			p, err := executeBound(s, l, perm, m)
			if err != nil {
				return err
			}
			if best == nil || p.TotalCost < best.TotalCost {
				best = p
			}
			return nil
		}
		for i := range used {
			if used[i] {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			if err := rec(); err != nil {
				return err
			}
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return best, nil
}

// TestExecuteOptimizedMatchesBruteForce is the golden equivalence test: the
// pruned parallel branch-and-bound returns exactly the plan the exhaustive
// permutation enumeration returns — same cost, same moves, same storage
// cells, same flow — including the tie-break to the first minimal binding.
func TestExecuteOptimizedMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name    string
		demand  int
		mixers  int
		fluids  int
		storage int
	}{
		{"pcr-20-3", 20, 3, 0, -1}, // Fig. 5 floorplan
		{"pcr-8-2", 8, 2, 0, -1},
		{"auto-7-3-extra", 16, 3, 7, 8}, // more physical than logical mixers
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := pcrSchedule(t, tc.demand, tc.mixers)
			var l *chip.Layout
			if tc.fluids == 0 {
				l = chip.PCRLayout()
			} else {
				var err error
				l, err = chip.AutoLayout(tc.fluids, tc.mixers+2, tc.storage)
				if err != nil {
					t.Fatalf("AutoLayout: %v", err)
				}
			}
			want, err := bruteForceOptimized(s, l)
			if err != nil {
				t.Fatalf("brute force: %v", err)
			}
			got, err := ExecuteOptimized(s, l)
			if err != nil {
				t.Fatalf("ExecuteOptimized: %v", err)
			}
			if got.TotalCost != want.TotalCost {
				t.Fatalf("cost %d, brute force %d", got.TotalCost, want.TotalCost)
			}
			if !reflect.DeepEqual(got.Moves, want.Moves) {
				t.Error("move list differs from the brute-force winner")
			}
			if !reflect.DeepEqual(got.StorageCells, want.StorageCells) {
				t.Error("storage-cell assignment differs from the brute-force winner")
			}
			if !reflect.DeepEqual(got.Flow, want.Flow) {
				t.Error("flow matrix differs from the brute-force winner")
			}
		})
	}
}

// TestExecuteOptimizedSingleMatrixBuild pins the acceptance criterion: the
// whole binding search — every permutation it explores — performs exactly one
// cost-matrix computation per distinct layout geometry.
func TestExecuteOptimizedSingleMatrixBuild(t *testing.T) {
	s := pcrSchedule(t, 20, 3)
	l := chip.PCRLayout()
	route.PurgeMatrixCache()
	base := route.MatrixBuildCount()
	if _, err := ExecuteOptimized(s, l); err != nil {
		t.Fatal(err)
	}
	if got := route.MatrixBuildCount() - base; got != 1 {
		t.Errorf("ExecuteOptimized performed %d matrix builds, want exactly 1", got)
	}
	// A second search on the same geometry is a pure cache hit.
	if _, err := ExecuteOptimized(s, l); err != nil {
		t.Fatal(err)
	}
	if got := route.MatrixBuildCount() - base; got != 1 {
		t.Errorf("repeat search rebuilt the matrix: %d builds total", got)
	}
	// Execute (identity binding) shares the same cached matrix.
	if _, err := Execute(s, l); err != nil {
		t.Fatal(err)
	}
	if got := route.MatrixBuildCount() - base; got != 1 {
		t.Errorf("Execute rebuilt the matrix: %d builds total", got)
	}
}

// TestOptimizePlacementMatchesFullOnRouteMatrix runs the incremental-vs-
// legacy annealer equivalence on the real geometric matrix (route.CostMatrix
// with obstacle-aware BFS distances) and a real plan's traffic.
func TestOptimizePlacementMatchesFullOnRouteMatrix(t *testing.T) {
	s := pcrSchedule(t, 20, 3)
	l := chip.PCRLayout()
	plan, err := Execute(s, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 5} {
		wantL, wantC, err := chip.OptimizePlacementFull(l, plan.Flow, route.CostMatrix, 300, seed)
		if err != nil {
			t.Fatalf("Full: %v", err)
		}
		gotL, gotC, err := chip.OptimizePlacement(l, plan.Flow, route.CostMatrix, 300, seed)
		if err != nil {
			t.Fatalf("incremental: %v", err)
		}
		if gotC != wantC || !reflect.DeepEqual(gotL, wantL) {
			t.Errorf("seed %d: incremental annealer diverged from legacy on route.CostMatrix (cost %d vs %d)",
				seed, gotC, wantC)
		}
	}
}
