package exec

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/route"
)

// BenchmarkExecuteOptimized compares the branch-and-bound binding search
// (matrix hoisted out of the permutation loop, admissible pruning, parallel
// first-level branches) against the legacy exhaustive enumeration on a
// layout with more physical than logical mixers (5P3 = 60 bindings).
func BenchmarkExecuteOptimized(b *testing.B) {
	s := pcrSchedule(b, 20, 3)
	l, err := chip.AutoLayout(7, 5, 8)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := route.MatrixFor(l); err != nil { // warm the geometry cache
		b.Fatal(err)
	}
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteOptimized(s, l); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bruteForceOptimized(s, l); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExecute measures the single-binding plan derivation on the warm
// matrix cache — the inner loop of every experiment sweep and replan.
func BenchmarkExecute(b *testing.B) {
	s := pcrSchedule(b, 20, 3)
	l := chip.PCRLayout()
	if _, err := route.MatrixFor(l); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(s, l); err != nil {
			b.Fatal(err)
		}
	}
}
