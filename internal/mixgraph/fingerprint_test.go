package mixgraph_test

import (
	"sync"
	"testing"

	"repro/internal/minmix"
	"repro/internal/ratio"
)

// TestFingerprintMemo checks the memoised identity accessors: stable across
// calls, equal across structurally identical graphs, distinct across
// different targets, and consistent under concurrent first use.
func TestFingerprintMemo(t *testing.T) {
	r := ratio.MustParse("2:1:1:1:1:1:9")
	g1, err := minmix.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := minmix.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical graphs fingerprint differently")
	}
	if g1.Fingerprint() != g1.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	other, err := minmix.Build(ratio.MustParse("1:3"))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint() == other.Fingerprint() {
		t.Fatal("different graphs share a fingerprint")
	}
	if got, want := g1.TargetKey(), g1.Target.String(); got != want {
		t.Fatalf("TargetKey %q, want %q", got, want)
	}

	// Concurrent first computation must agree (exercised under -race).
	fresh, err := minmix.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]uint64, 8)
	keys := make([]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fresh.Fingerprint()
			keys[i] = fresh.TargetKey()
		}(i)
	}
	wg.Wait()
	for i := range results {
		if results[i] != g1.Fingerprint() || keys[i] != g1.TargetKey() {
			t.Fatalf("concurrent accessor %d diverged", i)
		}
	}
}

// TestFingerprintZeroAllocWarm proves the warm accessors are free: the
// serving layer builds a plan-cache key from them on every request.
func TestFingerprintZeroAllocWarm(t *testing.T) {
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatal(err)
	}
	g.Fingerprint()
	g.TargetKey()
	allocs := testing.AllocsPerRun(100, func() {
		_ = g.Fingerprint()
		_ = g.TargetKey()
	})
	if allocs != 0 {
		t.Fatalf("warm identity accessors allocate %.1f objects per run, want 0", allocs)
	}
}
