// Package mixgraph provides the (1:1) mix-split task-graph substrate shared
// by all base mixing algorithms (MM, RMA, MTCS) of Roy et al., DAC 2014.
//
// A Graph describes one pass of mixture preparation: leaf nodes dispense unit
// droplets of input fluids at CF 100%, and every Mix node merges the output
// droplets of its two children and splits the result into two identical unit
// droplets. Each node therefore offers exactly two output droplets. In a
// plain mixing tree (MM, RMA) one output of every interior node feeds its
// parent and the other is waste; algorithms with common-subtree sharing
// (MTCS) may consume both outputs, making the graph a DAG. The root's two
// outputs are the pass's two target droplets.
package mixgraph

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/ratio"
)

// Kind discriminates graph nodes.
type Kind int8

const (
	// Leaf dispenses a fresh unit droplet of one input fluid.
	Leaf Kind = iota
	// Mix is a (1:1) mix-split operation on two child droplets.
	Mix
)

func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Mix:
		return "mix"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

// Node is one vertex of a mix-split graph. Nodes are created through a
// Builder and are immutable afterwards.
type Node struct {
	// ID is the node's index in Graph.Nodes (children precede parents).
	ID int
	// Kind says whether the node dispenses an input droplet or mixes.
	Kind Kind
	// Fluid is the input-fluid index for Leaf nodes (0-based), -1 for Mix.
	Fluid int
	// Children are the two droplet sources of a Mix node (nil for leaves).
	// Each child reference consumes exactly one of the child's two outputs.
	Children [2]*Node
	// Level is the structural level: leaves at level 0 and a mix at one more
	// than its highest child, i.e. the longest mix chain below the node.
	// The root of a depth-d graph is at level d.
	Level int
	// PosLevel is the paper's positional level, assigned top-down: the root
	// at Level d, every child one below its parent. It differs from Level
	// for shallow subtrees hanging high in the tree (e.g. a leaf-leaf mix
	// directly under the root has Level 1 but PosLevel d-1). For shared
	// nodes (two parents) the smaller candidate — the more urgent one — is
	// kept. Scheduling policies use PosLevel; set by Builder.Build.
	PosLevel int
	// Vec is the node's exact CF vector.
	Vec ratio.Vector

	parents []*Node
}

// IsLeaf reports whether n dispenses an input droplet.
func (n *Node) IsLeaf() bool { return n.Kind == Leaf }

// outputs returns how many droplets the node offers: a leaf dispenses one
// unit droplet, a mix-split yields two.
func (n *Node) outputs() int {
	if n.Kind == Leaf {
		return 1
	}
	return 2
}

// Parents returns the mix nodes consuming this node's outputs (0, 1 or 2).
func (n *Node) Parents() []*Node { return n.parents }

// Graph is a complete one-pass mix-split task graph for a target ratio.
type Graph struct {
	// Target is the mixture the pass prepares.
	Target ratio.Ratio
	// Root is the mix node whose two outputs are the target droplets.
	Root *Node
	// Nodes lists every node in topological order (children first).
	Nodes []*Node
	// Algorithm names the base algorithm that built the graph ("MM", ...).
	Algorithm string

	// Memoised derived identity (see fingerprint.go). Graphs are immutable
	// after Build, so both values are computed at most once per graph; the
	// atomics make lazy computation safe under concurrent readers. The
	// fields also make Graph uncopyable under `go vet` (copylocks), which
	// is correct: every holder must share the one memo.
	fp        atomic.Uint64
	fpDone    atomic.Bool
	targetKey atomic.Pointer[string]
}

// Builder constructs a Graph incrementally. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	target ratio.Ratio
	nodes  []*Node
}

// NewBuilder returns a builder for a mix-split graph targeting r.
func NewBuilder(r ratio.Ratio) *Builder {
	return &Builder{target: r}
}

// Leaf adds a fresh input-droplet node for the given fluid index.
func (b *Builder) Leaf(fluid int) *Node {
	if fluid < 0 || fluid >= b.target.N() {
		panic(fmt.Sprintf("mixgraph: leaf fluid %d out of range [0,%d)", fluid, b.target.N()))
	}
	n := &Node{
		ID:    len(b.nodes),
		Kind:  Leaf,
		Fluid: fluid,
		Level: 0,
		Vec:   ratio.Unit(fluid, b.target.N()),
	}
	b.nodes = append(b.nodes, n)
	return n
}

// Mix adds a (1:1) mix-split node over droplets from l and r. Each call
// consumes one output of each operand; an operand with both outputs already
// consumed panics (builders control their own operand reuse).
func (b *Builder) Mix(l, r *Node) *Node {
	for _, c := range []*Node{l, r} {
		if c == nil {
			panic("mixgraph: Mix with nil child")
		}
		if len(c.parents) >= c.outputs() {
			panic(fmt.Sprintf("mixgraph: node %d already has all outputs consumed", c.ID))
		}
	}
	lvl := l.Level
	if r.Level > lvl {
		lvl = r.Level
	}
	n := &Node{
		ID:       len(b.nodes),
		Kind:     Mix,
		Fluid:    -1,
		Children: [2]*Node{l, r},
		Level:    lvl + 1,
		Vec:      ratio.Mix(l.Vec, r.Vec),
	}
	l.parents = append(l.parents, n)
	r.parents = append(r.parents, n)
	b.nodes = append(b.nodes, n)
	return n
}

// Build finalises the graph with the given root and verifies every
// structural invariant. The builder must not be reused afterwards.
func (b *Builder) Build(root *Node, algorithm string) (*Graph, error) {
	g := &Graph{Target: b.target, Root: root, Nodes: b.nodes, Algorithm: algorithm}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.assignPosLevels()
	return g, nil
}

// assignPosLevels computes positional levels top-down from the root.
func (g *Graph) assignPosLevels() {
	for _, n := range g.Nodes {
		n.PosLevel = 0
	}
	g.Root.PosLevel = g.Root.Level
	// Nodes are topologically ordered (children before parents), so a
	// reverse sweep sees every parent before its children.
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		if n.Kind != Mix {
			continue
		}
		for _, c := range n.Children {
			if c.PosLevel == 0 || n.PosLevel-1 < c.PosLevel {
				c.PosLevel = n.PosLevel - 1
			}
		}
	}
}

// Validation errors.
var (
	ErrNoRoot       = errors.New("mixgraph: nil root")
	ErrRootConsumed = errors.New("mixgraph: root outputs must be targets, not inputs to other mixes")
	ErrRootNotMix   = errors.New("mixgraph: root must be a mix node")
	ErrWrongTarget  = errors.New("mixgraph: root CF vector does not match the target ratio")
	ErrUnreachable  = errors.New("mixgraph: node unreachable from root")
	ErrBadTopology  = errors.New("mixgraph: nodes not in topological order")
	ErrBadVector    = errors.New("mixgraph: mix vector is not the average of its children")
	ErrOverConsumed = errors.New("mixgraph: node output consumed more than twice")
)

// Validate checks the full set of graph invariants: topological node order,
// exact CF arithmetic at every mix, output-consumption bounds, root identity
// with the target ratio and reachability of every node.
func (g *Graph) Validate() error {
	if g.Root == nil {
		return ErrNoRoot
	}
	if g.Root.Kind != Mix {
		return ErrRootNotMix
	}
	if len(g.Root.parents) != 0 {
		return ErrRootConsumed
	}
	if !g.Root.Vec.Equal(g.Target.Vector()) {
		return fmt.Errorf("%w: root %v, target %v", ErrWrongTarget, g.Root.Vec, g.Target.Vector())
	}
	reach := make([]bool, len(g.Nodes))
	stack := []*Node{g.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.ID < 0 || n.ID >= len(g.Nodes) || g.Nodes[n.ID] != n {
			return fmt.Errorf("mixgraph: node ID %d inconsistent with node list", n.ID)
		}
		if reach[n.ID] {
			continue
		}
		reach[n.ID] = true
		if n.Kind == Mix {
			stack = append(stack, n.Children[0], n.Children[1])
		}
	}
	for i, n := range g.Nodes {
		if !reach[i] {
			return fmt.Errorf("%w: node %d", ErrUnreachable, i)
		}
		if len(n.parents) > n.outputs() {
			return fmt.Errorf("%w: node %d", ErrOverConsumed, i)
		}
		if n.Kind == Mix {
			for _, c := range n.Children {
				if c.ID >= n.ID {
					return fmt.Errorf("%w: mix %d before child %d", ErrBadTopology, n.ID, c.ID)
				}
			}
			if want := ratio.Mix(n.Children[0].Vec, n.Children[1].Vec); !n.Vec.Equal(want) {
				return fmt.Errorf("%w: node %d has %v, children average %v", ErrBadVector, n.ID, n.Vec, want)
			}
			wantLvl := n.Children[0].Level
			if n.Children[1].Level > wantLvl {
				wantLvl = n.Children[1].Level
			}
			if n.Level != wantLvl+1 {
				return fmt.Errorf("mixgraph: node %d level %d, want %d", n.ID, n.Level, wantLvl+1)
			}
		}
	}
	return nil
}
