package mixgraph

// Fingerprint returns a structural FNV-1a hash of the graph: node kinds,
// fluids and child wiring, in topological order. Graphs built by the
// deterministic algorithms (MM, RMA, MTCS, RSM) over the same ratio always
// collide intentionally; structurally different graphs virtually never do.
// The structure plus leaf fluids fully determine every CF vector in the
// graph (each mix vector is the average of its children), so the fingerprint
// is sound as a cache-key component even though it never reads a vector.
//
// Graphs are immutable after Build, so the hash is computed once and
// memoised; the hot path (plan-cache key construction on every serving
// request) is a single atomic load.
func (g *Graph) Fingerprint() uint64 {
	if g.fpDone.Load() {
		return g.fp.Load()
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(g.Nodes)))
	for _, n := range g.Nodes {
		if n.IsLeaf() {
			mix(1)
			mix(uint64(n.Fluid))
			continue
		}
		mix(2)
		mix(uint64(n.Children[0].ID))
		mix(uint64(n.Children[1].ID))
	}
	// Concurrent first callers compute the same deterministic value; the
	// value store precedes the flag store, so a reader seeing fpDone always
	// reads a complete hash.
	g.fp.Store(h)
	g.fpDone.Store(true)
	return h
}

// TargetKey returns the target ratio in colon form, memoised. Identical to
// g.Target.String() but allocation-free after the first call.
func (g *Graph) TargetKey() string {
	if s := g.targetKey.Load(); s != nil {
		return *s
	}
	s := g.Target.String()
	g.targetKey.Store(&s)
	return s
}
