package mixgraph

import (
	"fmt"
	"sort"
	"strings"
)

// BFSLabels assigns the paper's m_{1j} labels to the mix nodes of g: j is the
// node's 1-based position in a breadth-first traversal from the root,
// left to right (Fig. 1 labels the MM tree for the PCR mix m11..m17). The
// index prefix names the component tree; for a standalone base graph it is 1.
func BFSLabels(g *Graph, treeIndex int) map[*Node]string {
	labels := make(map[*Node]string, len(g.Nodes))
	j := 1
	queue := []*Node{g.Root}
	seen := map[*Node]bool{g.Root: true}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		labels[n] = fmt.Sprintf("m%d,%d", treeIndex, j)
		j++
		for _, c := range n.Children {
			if c != nil && c.Kind == Mix && !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return labels
}

// nodeName renders a node for humans: its BFS label for mixes, the fluid
// name for leaves.
func nodeName(g *Graph, n *Node, labels map[*Node]string) string {
	if n.Kind == Leaf {
		return g.Target.Name(n.Fluid)
	}
	return labels[n]
}

// Render draws the graph as an indented ASCII tree rooted at the target.
// Shared nodes (both outputs consumed) are drawn once and referenced by
// label afterwards.
func (g *Graph) Render() string {
	labels := BFSLabels(g, 1)
	var b strings.Builder
	fmt.Fprintf(&b, "%s tree for %s (d=%d)\n", g.Algorithm, g.Target, g.Root.Level)
	drawn := make(map[*Node]bool)
	var rec func(n *Node, prefix string, last bool)
	rec = func(n *Node, prefix string, last bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		name := nodeName(g, n, labels)
		switch {
		case n.Kind == Leaf:
			fmt.Fprintf(&b, "%s%s%s (input)\n", prefix, connector, name)
		case drawn[n]:
			fmt.Fprintf(&b, "%s%s%s (shared, see above)\n", prefix, connector, name)
		default:
			drawn[n] = true
			fmt.Fprintf(&b, "%s%s%s L%d %s\n", prefix, connector, name, n.Level, n.Vec)
			rec(n.Children[0], childPrefix, false)
			rec(n.Children[1], childPrefix, true)
		}
	}
	drawn[g.Root] = true
	fmt.Fprintf(&b, "%s L%d %s (root: 2 target droplets)\n", labels[g.Root], g.Root.Level, g.Root.Vec)
	rec(g.Root.Children[0], "", false)
	rec(g.Root.Children[1], "", true)
	return b.String()
}

// DOT exports the graph in Graphviz format: mixes as boxes, inputs as
// ellipses, waste outputs as dashed edges to a waste sink.
func (g *Graph) DOT() string {
	labels := BFSLabels(g, 1)
	var b strings.Builder
	b.WriteString("digraph mixgraph {\n  rankdir=BT;\n")
	ids := make([]int, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Ints(ids)
	wasteCount := 0
	for _, id := range ids {
		n := g.Nodes[id]
		if n.Kind == Leaf {
			fmt.Fprintf(&b, "  n%d [label=%q shape=ellipse];\n", n.ID, g.Target.Name(n.Fluid))
			continue
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=box];\n", n.ID, fmt.Sprintf("%s\n%s", labels[n], n.Vec))
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", c.ID, n.ID)
		}
		if n != g.Root {
			for k := len(n.parents); k < 2; k++ {
				fmt.Fprintf(&b, "  w%d [label=\"waste\" shape=point];\n", wasteCount)
				fmt.Fprintf(&b, "  n%d -> w%d [style=dashed];\n", n.ID, wasteCount)
				wasteCount++
			}
		}
	}
	fmt.Fprintf(&b, "  target [label=\"2x %s\" shape=doublecircle];\n  n%d -> target;\n}\n", g.Target, g.Root.ID)
	return b.String()
}
