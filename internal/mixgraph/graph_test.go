package mixgraph

import (
	"strings"
	"testing"

	"repro/internal/ratio"
)

// buildPCRTree hand-builds the MM mixing tree of Fig. 1 for the PCR
// master-mix ratio 2:1:1:1:1:1:9 (d = 4):
//
//	m15 = x2+x3, m16 = x6+x7, m17 = x4+x5          (level 1)
//	m13 = m15+m16, m14 = m17+x1                    (level 2)
//	m12 = m13+m14                                  (level 3)
//	m11 = m12+x7                                   (level 4, root)
func buildPCRTree(t *testing.T) *Graph {
	t.Helper()
	r := ratio.MustParse("2:1:1:1:1:1:9")
	b := NewBuilder(r)
	m15 := b.Mix(b.Leaf(1), b.Leaf(2))
	m16 := b.Mix(b.Leaf(5), b.Leaf(6))
	m17 := b.Mix(b.Leaf(3), b.Leaf(4))
	m13 := b.Mix(m15, m16)
	m14 := b.Mix(m17, b.Leaf(0))
	m12 := b.Mix(m13, m14)
	m11 := b.Mix(m12, b.Leaf(6))
	g, err := b.Build(m11, "MM")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestPCRTreeStats(t *testing.T) {
	g := buildPCRTree(t)
	s := g.Stats()
	if s.Mixes != 7 {
		t.Errorf("Mixes = %d, want 7", s.Mixes)
	}
	if s.Depth != 4 {
		t.Errorf("Depth = %d, want 4", s.Depth)
	}
	wantInputs := []int64{1, 1, 1, 1, 1, 1, 2}
	for i, w := range wantInputs {
		if s.Inputs[i] != w {
			t.Errorf("Inputs[%d] = %d, want %d", i, s.Inputs[i], w)
		}
	}
	if s.InputTotal != 8 {
		t.Errorf("InputTotal = %d, want 8", s.InputTotal)
	}
	if s.Waste != 6 {
		t.Errorf("Waste = %d, want 6 (= I - 2)", s.Waste)
	}
	if s.Shared != 0 {
		t.Errorf("Shared = %d, want 0 for a plain tree", s.Shared)
	}
}

func TestConservation(t *testing.T) {
	g := buildPCRTree(t)
	s := g.Stats()
	if s.InputTotal != s.Waste+2 {
		t.Errorf("conservation violated: I=%d, W=%d", s.InputTotal, s.Waste)
	}
}

func TestWastesList(t *testing.T) {
	g := buildPCRTree(t)
	w := g.Wastes()
	if len(w) != 6 {
		t.Fatalf("len(Wastes) = %d, want 6", len(w))
	}
	levels := map[int]int{}
	for _, n := range w {
		levels[n.Level]++
	}
	// Fig. 1: wastes at level 1 (m15,m16,m17), level 2 (m13,m14), level 3 (m12).
	if levels[1] != 3 || levels[2] != 2 || levels[3] != 1 {
		t.Errorf("waste level histogram = %v, want map[1:3 2:2 3:1]", levels)
	}
}

func TestRootVector(t *testing.T) {
	g := buildPCRTree(t)
	if !g.Root.Vec.Equal(g.Target.Vector()) {
		t.Errorf("root vec %v != target %v", g.Root.Vec, g.Target.Vector())
	}
}

func TestLevelWidths(t *testing.T) {
	g := buildPCRTree(t)
	w := g.LevelWidths()
	want := []int{3, 2, 1, 1}
	if len(w) != len(want) {
		t.Fatalf("LevelWidths = %v, want %v", w, want)
	}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("LevelWidths[%d] = %d, want %d", i, w[i], want[i])
		}
	}
}

func TestBFSLabels(t *testing.T) {
	g := buildPCRTree(t)
	labels := BFSLabels(g, 1)
	if got := labels[g.Root]; got != "m1,1" {
		t.Errorf("root label = %q, want m1,1", got)
	}
	if len(labels) != 7 {
		t.Errorf("labelled %d mixes, want 7", len(labels))
	}
	// The root's mix child is m1,2.
	if got := labels[g.Root.Children[0]]; got != "m1,2" {
		t.Errorf("root's mix child label = %q, want m1,2", got)
	}
}

func TestBuildRejectsWrongRoot(t *testing.T) {
	r := ratio.MustNew(1, 1)
	b := NewBuilder(r)
	l := b.Leaf(0)
	m := b.Mix(l, b.Leaf(0)) // pure x1: wrong target
	if _, err := b.Build(m, "bad"); err == nil {
		t.Error("Build accepted a root not matching the target")
	}
}

func TestBuildRejectsUnreachable(t *testing.T) {
	r := ratio.MustNew(1, 1)
	b := NewBuilder(r)
	root := b.Mix(b.Leaf(0), b.Leaf(1))
	b.Leaf(0) // orphan
	if _, err := b.Build(root, "bad"); err == nil {
		t.Error("Build accepted an unreachable node")
	}
}

func TestBuildRejectsConsumedRoot(t *testing.T) {
	r := ratio.MustNew(2, 2)
	b := NewBuilder(r)
	m1 := b.Mix(b.Leaf(0), b.Leaf(1))
	root := b.Mix(m1, m1) // mixing both outputs of m1: same CF as m1
	if _, err := b.Build(m1, "bad"); err == nil {
		t.Error("Build accepted a root with consumed outputs")
	}
	_ = root
}

func TestBuildRejectsLeafRoot(t *testing.T) {
	r := ratio.MustNew(1, 1)
	b := NewBuilder(r)
	l := b.Leaf(0)
	if _, err := b.Build(l, "bad"); err == nil {
		t.Error("Build accepted a leaf root")
	}
}

func TestBuildNilRoot(t *testing.T) {
	b := NewBuilder(ratio.MustNew(1, 1))
	if _, err := b.Build(nil, "bad"); err == nil {
		t.Error("Build accepted a nil root")
	}
}

func TestMixPanicsOnOverConsumption(t *testing.T) {
	b := NewBuilder(ratio.MustNew(2, 2))
	l := b.Leaf(0)
	b.Mix(l, b.Leaf(1))
	defer func() {
		if recover() == nil {
			t.Error("second consumption of a leaf output did not panic")
		}
	}()
	b.Mix(l, b.Leaf(1)) // a leaf dispenses exactly one droplet
}

func TestSharedSubtreeDAG(t *testing.T) {
	// 1:1:2 over {x1,x2,x3}: m1 = x1+x2 (<1:1:0>/2); root needs m1 and x3:
	// root = m1+x3 = <1:1:2>/4. Build a DAG where m1's second output also
	// feeds another mix to exercise Shared accounting.
	r := ratio.MustNew(1, 1, 2)
	b := NewBuilder(r)
	m1 := b.Mix(b.Leaf(0), b.Leaf(1))
	mid := b.Mix(m1, b.Leaf(2)) // <1:1:2>/4 = target
	root := b.Mix(mid, m1)      // avg(<1:1:2>/4, <2:2:0>/4) = <3:3:2>/8 — not target
	if _, err := b.Build(root, "dag"); err == nil {
		t.Error("Build accepted wrong-target DAG root")
	}
	// Rebuild correctly: two independent sub-mixes sharing a common subtree.
	b2 := NewBuilder(ratio.MustNew(1, 1, 1, 1))
	s := b2.Mix(b2.Leaf(0), b2.Leaf(1)) // <1:1:0:0>/2, shared
	t1 := b2.Mix(s, b2.Leaf(2))         // <1:1:2:0>/4
	t2 := b2.Mix(s, b2.Leaf(3))         // <1:1:0:2>/4
	rt := b2.Mix(t1, t2)                // <2:2:2:2>/8 = <1:1:1:1>/4
	g, err := b2.Build(rt, "dag")
	if err != nil {
		t.Fatalf("Build shared DAG: %v", err)
	}
	st := g.Stats()
	if st.Shared != 1 {
		t.Errorf("Shared = %d, want 1", st.Shared)
	}
	if st.InputTotal != 4 || st.Waste != 2 {
		t.Errorf("I=%d W=%d, want 4 and 2", st.InputTotal, st.Waste)
	}
}

func TestRenderSmoke(t *testing.T) {
	g := buildPCRTree(t)
	out := g.Render()
	for _, want := range []string{"m1,1", "m1,7", "x7", "(input)", "2:1:1:1:1:1:9"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestDOTSmoke(t *testing.T) {
	g := buildPCRTree(t)
	out := g.DOT()
	for _, want := range []string{"digraph", "waste", "doublecircle", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if got := strings.Count(out, "style=dashed"); got != 6 {
		t.Errorf("DOT waste edges = %d, want 6", got)
	}
}

func TestKindString(t *testing.T) {
	if Leaf.String() != "leaf" || Mix.String() != "mix" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should still render")
	}
}
