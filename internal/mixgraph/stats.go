package mixgraph

// Stats summarises the single-pass cost of a base mix-split graph in the
// paper's notation.
type Stats struct {
	// Mixes is Tms for one pass: the number of (1:1) mix-split operations.
	Mixes int
	// Inputs counts input droplets per fluid (the paper's I[] for one pass).
	Inputs []int64
	// InputTotal is the total number of input droplets (the paper's I).
	InputTotal int64
	// Waste is W for one pass. By droplet conservation it always equals
	// InputTotal - 2 (two outputs of the root are targets).
	Waste int64
	// Depth is the level of the root node.
	Depth int
	// Shared counts mix nodes with both outputs consumed in-pass (common
	// subtrees; zero for plain trees such as MM and RMA).
	Shared int
}

// Stats computes the single-pass statistics of g.
func (g *Graph) Stats() Stats {
	s := Stats{Inputs: make([]int64, g.Target.N()), Depth: g.Root.Level}
	for _, n := range g.Nodes {
		switch n.Kind {
		case Leaf:
			s.Inputs[n.Fluid]++
			s.InputTotal++
		case Mix:
			s.Mixes++
			if len(n.parents) == 2 {
				s.Shared++
			}
		}
	}
	// Count waste directly (unconsumed outputs of non-root mixes); in a
	// validated graph this always equals InputTotal - 2 by conservation.
	for _, n := range g.Nodes {
		if n.Kind == Mix && n != g.Root {
			s.Waste += int64(2 - len(n.parents))
		}
	}
	return s
}

// Wastes lists the non-root mix nodes with at least one unconsumed output,
// i.e. the droplets a single pass discards. These are exactly the droplets
// the paper's mixing forest recycles. Nodes appear in topological order; a
// node with two free outputs appears twice.
func (g *Graph) Wastes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind != Mix || n == g.Root {
			continue
		}
		for k := len(n.parents); k < 2; k++ {
			out = append(out, n)
		}
	}
	return out
}

// MixNodes returns all mix nodes in topological order.
func (g *Graph) MixNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == Mix {
			out = append(out, n)
		}
	}
	return out
}

// LevelWidths returns, for positional levels 1..Depth, the number of mix
// nodes at each level (index 0 corresponds to level 1). Scheduling every
// node at its positional level is always feasible, so the maximum width is
// an upper bound on the mixers needed for completion in Depth cycles.
func (g *Graph) LevelWidths() []int {
	w := make([]int, g.Root.Level)
	for _, n := range g.Nodes {
		if n.Kind == Mix {
			w[n.PosLevel-1]++
		}
	}
	return w
}
