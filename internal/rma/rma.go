// Package rma reconstructs the RMA mixing algorithm of Roy et al.
// ("Layout-Aware Solution Preparation for Biochemical Analysis on a Digital
// Microfluidic Biochip", VLSID 2011), used by the DAC 2014 droplet-streaming
// paper as one of its three base mixing algorithms.
//
// The DAC 2014 paper uses RMA as a black box and characterises it only by the
// property that matters for droplet streaming: "RMA constructs a base mixing
// tree with a larger number of waste droplets compared to other mixing
// algorithms (MM, RSM, MTCS)", which makes RMA-seeded mixing forests the
// fastest streaming engines. This package reconstructs that behaviour with a
// top-down ratio-partitioning builder:
//
//   - A node holding a sub-ratio with sum 2^k splits it into two halves of
//     sum 2^(k-1) each (greedy largest-part-first; a single fluid's amount
//     may be divided across the halves).
//   - A half containing exactly one fluid becomes a pure input leaf,
//     whatever its amount — a unit droplet at CF 100% carries it.
//
// The resulting trees are valid mixing trees for the same target and use at
// least as many input droplets (and therefore produce at least as much
// single-pass waste) as MM trees; the surplus grows with ratio skew. See
// DESIGN.md §4 for the substitution rationale.
package rma

import (
	"fmt"
	"sort"

	"repro/internal/mixgraph"
	"repro/internal/ratio"
)

// Name is the algorithm identifier used across the repository.
const Name = "RMA"

// part is one fluid's share within a sub-ratio during partitioning.
type part struct {
	fluid  int
	amount int64
}

// Build constructs the RMA mixing tree for the target ratio.
func Build(target ratio.Ratio) (*mixgraph.Graph, error) {
	r := target.Normalized()
	d := r.Depth()
	if r.N() < 2 || d == 0 {
		return nil, fmt.Errorf("rma: ratio %v needs no mixing", target)
	}
	b := mixgraph.NewBuilder(target)
	parts := make([]part, 0, r.N())
	for i := 0; i < r.N(); i++ {
		parts = append(parts, part{fluid: i, amount: r.Part(i)})
	}
	root, err := build(b, parts, d)
	if err != nil {
		return nil, err
	}
	return b.Build(root, Name)
}

// build returns a droplet node realising the sub-ratio `parts` (sum 2^k).
func build(b *mixgraph.Builder, parts []part, k int) (*mixgraph.Node, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("rma: internal error: empty sub-ratio")
	}
	if len(parts) == 1 {
		// A single-fluid half is satisfied by one pure unit droplet.
		return b.Leaf(parts[0].fluid), nil
	}
	if k == 0 {
		return nil, fmt.Errorf("rma: internal error: %d fluids left at scale 1", len(parts))
	}
	left, right := halve(parts, int64(1)<<uint(k-1))
	l, err := build(b, left, k-1)
	if err != nil {
		return nil, err
	}
	rn, err := build(b, right, k-1)
	if err != nil {
		return nil, err
	}
	return b.Mix(l, rn), nil
}

// halve splits a sub-ratio into two halves of `half` units each, greedily
// assigning the largest parts first and splitting one fluid across the
// boundary if needed. Ordering is deterministic: amount descending, fluid
// index ascending.
func halve(parts []part, half int64) (left, right []part) {
	sorted := append([]part(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].amount != sorted[j].amount {
			return sorted[i].amount > sorted[j].amount
		}
		return sorted[i].fluid < sorted[j].fluid
	})
	room := half
	for _, p := range sorted {
		switch {
		case room == 0:
			right = append(right, p)
		case p.amount <= room:
			left = append(left, p)
			room -= p.amount
		default:
			left = append(left, part{fluid: p.fluid, amount: room})
			right = append(right, part{fluid: p.fluid, amount: p.amount - room})
			room = 0
		}
	}
	return left, right
}
