package rma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/minmix"
	"repro/internal/ratio"
)

func TestBuildValidates(t *testing.T) {
	for _, s := range []string{
		"2:1:1:1:1:1:9",
		"26:21:2:2:3:3:199",
		"128:123:5",
		"25:5:5:5:5:13:13:25:1:159",
		"9:17:26:9:195",
		"57:28:6:6:6:3:150",
		"1:3",
		"1:1",
	} {
		g, err := Build(ratio.MustParse(s))
		if err != nil {
			t.Fatalf("Build(%s): %v", s, err)
		}
		st := g.Stats()
		if st.InputTotal != st.Waste+2 {
			t.Errorf("%s: conservation violated: I=%d W=%d", s, st.InputTotal, st.Waste)
		}
		if st.Shared != 0 {
			t.Errorf("%s: RMA must build a plain tree, got %d shared nodes", s, st.Shared)
		}
	}
}

func TestPureLeafShortcut(t *testing.T) {
	// 128:123:5 at d=8: the first split isolates fluid 1 as a pure leaf
	// directly under the root.
	g, err := Build(ratio.MustParse("128:123:5"))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	l, r := g.Root.Children[0], g.Root.Children[1]
	oneIsPureLeaf := (l.IsLeaf() && l.Fluid == 0) || (r.IsLeaf() && r.Fluid == 0)
	if !oneIsPureLeaf {
		t.Error("expected a pure x1 leaf directly under the root")
	}
}

func TestWasteAtLeastMM(t *testing.T) {
	// The property the DAC'14 paper relies on: RMA trees produce at least as
	// much single-pass waste (= input droplets) as MM trees, on the paper's
	// own example ratios.
	for _, s := range []string{
		"26:21:2:2:3:3:199",
		"25:5:5:5:5:13:13:25:1:159",
		"9:17:26:9:195",
		"57:28:6:6:6:3:150",
		"2:1:1:1:1:1:9",
	} {
		r := ratio.MustParse(s)
		g, err := Build(r)
		if err != nil {
			t.Fatalf("Build(%s): %v", s, err)
		}
		if got, mm := g.Stats().InputTotal, minmix.InputCount(r); got < mm {
			t.Errorf("%s: RMA I=%d < MM I=%d", s, got, mm)
		}
	}
}

func TestDilution(t *testing.T) {
	// 1:3 (d=2): root splits {1,3} into {2(x2)} and {1(x1),1(x2)}.
	g, err := Build(ratio.MustNew(1, 3))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := g.Stats()
	if s.Mixes != 2 || s.InputTotal != 3 {
		t.Errorf("Tms=%d I=%d, want 2 and 3", s.Mixes, s.InputTotal)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(ratio.MustNew(8)); err == nil {
		t.Error("single-fluid ratio accepted")
	}
}

func TestHalveBalance(t *testing.T) {
	left, right := halve([]part{{0, 5}, {1, 2}, {2, 1}}, 4)
	var ls, rs int64
	for _, p := range left {
		ls += p.amount
	}
	for _, p := range right {
		rs += p.amount
	}
	if ls != 4 || rs != 4 {
		t.Errorf("halve sums = %d, %d; want 4, 4", ls, rs)
	}
}

func TestQuickRandomRatios(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(11)
		parts := make([]int64, n)
		for i := range parts {
			parts[i] = 1
		}
		for rest := 32 - n; rest > 0; rest-- {
			parts[rng.Intn(n)]++
		}
		r, err := ratio.New(parts...)
		if err != nil {
			return false
		}
		g, err := Build(r)
		if err != nil {
			return false
		}
		s := g.Stats()
		// Build validates vectors; check tree arithmetic here.
		return int64(s.Mixes) == s.InputTotal-1 && s.Waste == s.InputTotal-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
