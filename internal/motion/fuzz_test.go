package motion

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chip"
	"repro/internal/exec"
)

// randomLayout builds a random lattice floorplan with mixers (with exits),
// reservoirs, storage cells, a waste reservoir and an output port.
func randomLayout(rng *rand.Rand) (*chip.Layout, error) {
	cols := 3 + rng.Intn(3)
	rows := 3 + rng.Intn(2)
	type pos struct{ c, r int }
	var free []pos
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			free = append(free, pos{c, r})
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	take := func() pos {
		p := free[0]
		free = free[1:]
		return p
	}
	var slots []chip.Slot
	nMix := 2 + rng.Intn(2)
	nRes0 := 2 + rng.Intn(3)
	if nMix+nRes0+3 > len(free) {
		return nil, fmt.Errorf("lattice too small")
	}
	for i := 0; i < nMix; i++ {
		p := take()
		slots = append(slots, chip.Slot{Col: p.c, Row: p.r, Kind: chip.Mixer, Name: fmt.Sprintf("M%d", i+1)})
	}
	for i := 0; i < nRes0; i++ {
		p := take()
		slots = append(slots, chip.Slot{Col: p.c, Row: p.r, Kind: chip.Reservoir, Name: fmt.Sprintf("R%d", i+1), Fluid: i})
	}
	p := take()
	slots = append(slots, chip.Slot{Col: p.c, Row: p.r, Kind: chip.Storage, Name: "q1"})
	p = take()
	slots = append(slots, chip.Slot{Col: p.c, Row: p.r, Kind: chip.Waste, Name: "W1"})
	p = take()
	slots = append(slots, chip.Slot{Col: p.c, Row: p.r, Kind: chip.Output, Name: "OUT"})
	return chip.NewLatticeLayout(cols, rows, slots)
}

// randomMoves builds a plausible single-cycle move set over the layout.
func randomMoves(rng *rand.Rand, l *chip.Layout) []exec.Move {
	mixers := l.OfKind(chip.Mixer)
	reservoirs := l.OfKind(chip.Reservoir)
	var moves []exec.Move
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		m := mixers[rng.Intn(len(mixers))]
		switch rng.Intn(3) {
		case 0: // dispense
			r := reservoirs[rng.Intn(len(reservoirs))]
			moves = append(moves, exec.Move{Cycle: 1, From: r.Name, To: m.Name, Purpose: exec.Dispense})
		case 1: // transfer
			m2 := mixers[rng.Intn(len(mixers))]
			moves = append(moves, exec.Move{Cycle: 1, From: m.Name, To: m2.Name, Purpose: exec.Transfer})
		default: // fetch from storage
			moves = append(moves, exec.Move{Cycle: 1, From: "q1", To: m.Name, Purpose: exec.Fetch})
		}
	}
	return moves
}

// checkRoutes revalidates the fluidic constraints of one routed cycle.
func checkRoutes(l *chip.Layout, cyc CycleResult) error {
	blocked := l.Blocked()
	at := func(i, t int) (chip.Point, bool) {
		r := cyc.Routes[i]
		if len(r.Steps) <= 1 { // in-module hand-off
			return chip.Point{}, false
		}
		if t < r.Start || t > r.Arrival() {
			return chip.Point{}, false
		}
		return r.Steps[t-r.Start], true
	}
	for i, r := range cyc.Routes {
		for k, p := range r.Steps {
			if len(r.Steps) > 1 && blocked(p) {
				return fmt.Errorf("droplet %d crosses a module at %v", i, p)
			}
			if k > 0 {
				prev := r.Steps[k-1]
				dx, dy := p.X-prev.X, p.Y-prev.Y
				if dx*dx+dy*dy > 1 {
					return fmt.Errorf("droplet %d jumps", i)
				}
			}
		}
	}
	for t := 0; t <= cyc.Makespan; t++ {
		for i := range cyc.Routes {
			pi, ok := at(i, t)
			if !ok {
				continue
			}
			for j := i + 1; j < len(cyc.Routes); j++ {
				for _, tt := range []int{t - 1, t, t + 1} {
					pj, ok := at(j, tt)
					if !ok {
						continue
					}
					dx, dy := pi.X-pj.X, pi.Y-pj.Y
					if dx < 0 {
						dx = -dx
					}
					if dy < 0 {
						dy = -dy
					}
					if dx <= 1 && dy <= 1 {
						return fmt.Errorf("droplets %d and %d within margin at t=%d/%d", i, j, t, tt)
					}
				}
			}
		}
	}
	return nil
}

func TestQuickRandomLayoutsRouteSafely(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := randomLayout(rng)
		if err != nil {
			return true // rejected layout (e.g. not enough slots); skip
		}
		moves := randomMoves(rng, l)
		plan := &exec.Plan{Moves: moves}
		res, err := RoutePlan(plan, l)
		if err != nil {
			// Dense random traffic may genuinely saturate a tiny array;
			// failing to route is acceptable, unsafe routing is not.
			return true
		}
		for _, cyc := range res.Cycles {
			if err := checkRoutes(l, cyc); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRandomLayoutsUsuallyRoutable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	attempts, failures := 0, 0
	for i := 0; i < 60; i++ {
		l, err := randomLayout(rng)
		if err != nil {
			continue
		}
		moves := randomMoves(rng, l)
		attempts++
		if _, err := RoutePlan(&exec.Plan{Moves: moves}, l); err != nil {
			failures++
		}
	}
	if attempts == 0 {
		t.Fatal("no layouts generated")
	}
	if failures*5 > attempts {
		t.Errorf("router failed on %d/%d random instances", failures, attempts)
	}
}
