package motion

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/exec"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/ratio"
	"repro/internal/sched"
)

func pcrPlan(t *testing.T, demand int) (*exec.Plan, *chip.Layout) {
	t.Helper()
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatalf("minmix.Build: %v", err)
	}
	f, err := forest.Build(g, demand)
	if err != nil {
		t.Fatalf("forest.Build: %v", err)
	}
	s, err := sched.SRS(f, 3)
	if err != nil {
		t.Fatalf("SRS: %v", err)
	}
	l := chip.PCRLayout()
	plan, err := exec.Execute(s, l)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return plan, l
}

func TestRoutePlanCompletes(t *testing.T) {
	plan, layout := pcrPlan(t, 20)
	res, err := RoutePlan(plan, layout)
	if err != nil {
		t.Fatalf("RoutePlan: %v", err)
	}
	routed := 0
	for _, c := range res.Cycles {
		routed += len(c.Routes)
	}
	if routed != len(plan.Moves) {
		t.Errorf("routed %d of %d moves", routed, len(plan.Moves))
	}
	if res.Makespan <= 0 || res.Serialized < res.Makespan {
		t.Errorf("makespan %d, serialized %d", res.Makespan, res.Serialized)
	}
}

func TestConcurrencyBeatsSerialization(t *testing.T) {
	plan, layout := pcrPlan(t, 20)
	res, err := RoutePlan(plan, layout)
	if err != nil {
		t.Fatalf("RoutePlan: %v", err)
	}
	if res.Speedup() <= 1.2 {
		t.Errorf("speedup = %.2f, expected clear win over serialized routing", res.Speedup())
	}
	t.Logf("concurrent %d vs serialized %d micro-steps (%.2fx)",
		res.Makespan, res.Serialized, res.Speedup())
}

// TestFluidicConstraints revalidates every routed cycle independently:
// trajectories stay on free electrodes, are 4-connected-or-waiting, and any
// two droplets keep Chebyshev distance >= 2 at equal and adjacent
// micro-steps while both are on the array.
func TestFluidicConstraints(t *testing.T) {
	plan, layout := pcrPlan(t, 20)
	res, err := RoutePlan(plan, layout)
	if err != nil {
		t.Fatalf("RoutePlan: %v", err)
	}
	blocked := layout.Blocked()
	for _, cyc := range res.Cycles {
		// position of droplet i at micro-step t, and whether it is on-array.
		at := func(i, t int) (chip.Point, bool) {
			r := cyc.Routes[i]
			if t < r.Start || t > r.Arrival() {
				return chip.Point{}, false
			}
			return r.Steps[t-r.Start], true
		}
		for i, r := range cyc.Routes {
			for k, p := range r.Steps {
				if blocked(p) {
					t.Fatalf("cycle %d: droplet %d crosses a module at %v", cyc.Cycle, i, p)
				}
				if k > 0 {
					prev := r.Steps[k-1]
					dx, dy := p.X-prev.X, p.Y-prev.Y
					if dx*dx+dy*dy > 1 {
						t.Fatalf("cycle %d: droplet %d jumps from %v to %v", cyc.Cycle, i, prev, p)
					}
				}
			}
			if last := r.Steps[len(r.Steps)-1]; cyc.Routes[i].Move.To != "" {
				_ = last
			}
		}
		for tstep := 0; tstep <= cyc.Makespan; tstep++ {
			for i := range cyc.Routes {
				pi, oki := at(i, tstep)
				if !oki {
					continue
				}
				for j := i + 1; j < len(cyc.Routes); j++ {
					for _, tt := range []int{tstep - 1, tstep, tstep + 1} {
						pj, okj := at(j, tt)
						if !okj {
							continue
						}
						dx, dy := pi.X-pj.X, pi.Y-pj.Y
						if dx < 0 {
							dx = -dx
						}
						if dy < 0 {
							dy = -dy
						}
						// The arriving droplet leaves the array at its port;
						// a droplet at its own arrival instant is excused
						// from the forward-looking check against later
						// steps of others only if it has vanished: our
						// model keeps it until Arrival inclusive, so the
						// margin must hold up to that instant.
						if dx <= 1 && dy <= 1 {
							t.Fatalf("cycle %d: droplets %d and %d within margin at t=%d/%d (%v vs %v)",
								cyc.Cycle, i, j, tstep, tt, pi, pj)
						}
					}
				}
			}
		}
	}
}

func TestSameSourceSequentialInjection(t *testing.T) {
	// Cycle 1 of the PCR forest dispenses several droplets; any two moves
	// from the same reservoir must not overlap on the array.
	plan, layout := pcrPlan(t, 20)
	res, err := RoutePlan(plan, layout)
	if err != nil {
		t.Fatalf("RoutePlan: %v", err)
	}
	for _, cyc := range res.Cycles {
		bySource := map[string][]Route{}
		for _, r := range cyc.Routes {
			if r.Move.From == r.Move.To {
				continue // in-module hand-off, never on the array
			}
			bySource[r.Move.From] = append(bySource[r.Move.From], r)
		}
		for src, rs := range bySource {
			for i := 0; i < len(rs); i++ {
				for j := i + 1; j < len(rs); j++ {
					a, b := rs[i], rs[j]
					if a.Start > b.Start {
						a, b = b, a
					}
					if b.Start <= a.Arrival() {
						t.Errorf("cycle %d: two droplets from %s overlap ([%d,%d] and [%d,%d])",
							cyc.Cycle, src, a.Start, a.Arrival(), b.Start, b.Arrival())
					}
				}
			}
		}
	}
}

func TestRoutesEndAtPorts(t *testing.T) {
	plan, layout := pcrPlan(t, 8)
	in := map[string]chip.Point{}
	out := map[string]chip.Point{}
	for _, m := range layout.Modules {
		in[m.Name] = m.Port
		out[m.Name] = m.Out()
	}
	res, err := RoutePlan(plan, layout)
	if err != nil {
		t.Fatalf("RoutePlan: %v", err)
	}
	for _, cyc := range res.Cycles {
		for _, r := range cyc.Routes {
			if r.Move.From == r.Move.To {
				// In-module hand-off: no array transport.
				if len(r.Steps) != 1 {
					t.Errorf("self-move %s has %d steps", r.Move.From, len(r.Steps))
				}
				continue
			}
			if r.Steps[0] != out[r.Move.From] {
				t.Errorf("route starts at %v, want exit of %s", r.Steps[0], r.Move.From)
			}
			if r.Steps[len(r.Steps)-1] != in[r.Move.To] {
				t.Errorf("route ends at %v, want port of %s", r.Steps[len(r.Steps)-1], r.Move.To)
			}
		}
	}
}

func TestMakespanAtLeastLongestMove(t *testing.T) {
	plan, layout := pcrPlan(t, 16)
	res, err := RoutePlan(plan, layout)
	if err != nil {
		t.Fatalf("RoutePlan: %v", err)
	}
	for _, cyc := range res.Cycles {
		longest := 0
		for _, r := range cyc.Routes {
			if r.Move.Cost > longest {
				longest = r.Move.Cost
			}
		}
		if cyc.Makespan < longest {
			t.Errorf("cycle %d makespan %d below longest move %d", cyc.Cycle, cyc.Makespan, longest)
		}
	}
}
