// Package motion routes the droplets of one transport plan concurrently on
// the electrode array, respecting the fluidic constraints of digital
// microfluidics. The exec package prices each move by its shortest path in
// isolation; motion answers the harder operational question — can all the
// moves of one time-cycle run simultaneously without droplets merging
// accidentally, and how many electrode micro-steps does the cycle really
// take? This is the routing layer the paper delegates to prior work (path
// scheduling, Grissom & Brisk, DAC 2012 [8]).
//
// Constraints enforced (the standard static and dynamic droplet-
// interference rules): at every micro-step two concurrently routed droplets
// keep Chebyshev distance >= 2, and the same margin holds between one
// droplet's position at t and another's at t±1, so droplets can never merge
// or swap. Droplets vanish when they reach their destination port (they
// enter the module); several droplets dispensed from one reservoir in the
// same cycle are injected sequentially.
//
// The router is prioritised space-time A* with a reservation table
// (cooperative path-finding): moves are routed longest-first, each new route
// avoiding everything already reserved, with waiting allowed.
package motion

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/chip"
	"repro/internal/exec"
	"repro/internal/route"
)

// Route is one droplet's concurrent trajectory.
type Route struct {
	// Move is the transported droplet.
	Move exec.Move
	// Start is the micro-step the droplet enters the array.
	Start int
	// Steps holds the droplet's position at micro-steps Start, Start+1, ...;
	// the last entry is the destination port (the droplet then leaves the
	// array).
	Steps []chip.Point
}

// Arrival returns the micro-step the droplet reaches its destination.
func (r Route) Arrival() int { return r.Start + len(r.Steps) - 1 }

// CycleResult is one schedule cycle's concurrent routing.
type CycleResult struct {
	// Cycle is the schedule time-cycle.
	Cycle int
	// Routes are the cycle's droplet trajectories.
	Routes []Route
	// Makespan is the number of micro-steps until the last arrival.
	Makespan int
	// Serialized is what one-droplet-at-a-time execution would need
	// (the sum of the path costs).
	Serialized int
}

// Result is the routed plan.
type Result struct {
	Cycles []CycleResult
	// Makespan sums the per-cycle concurrent makespans.
	Makespan int
	// Serialized sums the per-cycle serialized costs.
	Serialized int
}

// Speedup reports serialized/concurrent micro-steps (>= 1).
func (r *Result) Speedup() float64 {
	if r.Makespan == 0 {
		return 1
	}
	return float64(r.Serialized) / float64(r.Makespan)
}

// Routing errors.
var (
	ErrUnroutable = errors.New("motion: no conflict-free route within the horizon")
)

// RoutePlan routes every cycle of the plan concurrently on the layout.
func RoutePlan(plan *exec.Plan, layout *chip.Layout) (*Result, error) {
	ports := endpointsOf(layout)
	// Each schedule cycle has two transport phases: arrivals (dispense,
	// transfer, fetch — droplets converging on mixers before the mix) and
	// departures (store, discard, emit — the mix products leaving). The two
	// phases never coexist on the array, so they are routed separately.
	type phase struct {
		cycle     int
		departure bool
	}
	byPhase := map[phase][]exec.Move{}
	var phases []phase
	for _, mv := range plan.Moves {
		p := phase{cycle: mv.Cycle}
		switch mv.Purpose {
		case exec.Store, exec.Discard, exec.Emit:
			p.departure = true
		}
		if _, ok := byPhase[p]; !ok {
			phases = append(phases, p)
		}
		byPhase[p] = append(byPhase[p], mv)
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].cycle != phases[j].cycle {
			return phases[i].cycle < phases[j].cycle
		}
		return !phases[i].departure && phases[j].departure
	})
	res := &Result{}
	byCycle := map[int]*CycleResult{}
	for _, p := range phases {
		cr, err := routeCycle(p.cycle, byPhase[p], layout, ports)
		if err != nil {
			return nil, fmt.Errorf("motion: cycle %d: %w", p.cycle, err)
		}
		if agg, ok := byCycle[p.cycle]; ok {
			// The departure phase runs strictly after the arrival phase:
			// shift its micro-step window past the arrivals' makespan.
			offset := agg.Makespan + 1
			for i := range cr.Routes {
				cr.Routes[i].Start += offset
			}
			agg.Routes = append(agg.Routes, cr.Routes...)
			agg.Makespan = offset + cr.Makespan
			agg.Serialized += cr.Serialized
		} else {
			byCycle[p.cycle] = cr
		}
	}
	// Rebuild the slice from the aggregated map, preserving cycle order.
	res.Cycles = res.Cycles[:0]
	var order []int
	for c := range byCycle {
		order = append(order, c)
	}
	sort.Ints(order)
	for _, c := range order {
		res.Cycles = append(res.Cycles, *byCycle[c])
		res.Makespan += byCycle[c].Makespan
		res.Serialized += byCycle[c].Serialized
	}
	return res, nil
}

// endpoints resolves where droplets appear (module exits) and where they are
// delivered (module ports).
type endpoints struct {
	in  map[string]chip.Point
	out map[string]chip.Point
}

func endpointsOf(layout *chip.Layout) endpoints {
	e := endpoints{in: map[string]chip.Point{}, out: map[string]chip.Point{}}
	for _, m := range layout.Modules {
		e.in[m.Name] = m.Port
		e.out[m.Name] = m.Out()
	}
	return e
}

// table is the space-time reservation table. Droplets not yet routed are
// inside their source modules and reserve nothing: a droplet enters the
// array only at its injection micro-step, so later-routed droplets simply
// delay their injection until the already-reserved trajectories allow it.
type table struct {
	traj    map[[3]int]int // (x, y, t) -> droplet id
	arrival map[int]int    // droplet id -> arrival micro-step
}

// conflicts reports whether droplet id may stand at c at micro-step t.
func (tb *table) conflicts(c chip.Point, t, id int) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			n := chip.Point{X: c.X + dx, Y: c.Y + dy}
			for _, tt := range [3]int{t - 1, t, t + 1} {
				if other, ok := tb.traj[[3]int{n.X, n.Y, tt}]; ok && other != id {
					return true
				}
			}
		}
	}
	return false
}

func routeCycle(cycle int, moves []exec.Move, layout *chip.Layout, ports endpoints) (*CycleResult, error) {
	// Longest moves first: they have the least routing slack.
	order := make([]int, len(moves))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return moves[order[a]].Cost > moves[order[b]].Cost })

	blocked := layout.Blocked()
	tb := &table{
		traj:    map[[3]int]int{},
		arrival: map[int]int{},
	}
	selfMove := func(mv exec.Move) bool { return mv.From == mv.To }
	// Sequential injection per source port: a droplet may enter the array
	// only after the previous droplet from the same reservoir has arrived.
	nextInject := map[chip.Point]int{}

	horizon := 4*(layout.Width+layout.Height) + 3*len(moves) + 8
	cr := &CycleResult{Cycle: cycle, Routes: make([]Route, len(moves))}
	routed := make([]bool, len(moves))
	retries := make([]int, len(moves))
	queue := append([]int(nil), order...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		mv := moves[id]
		if selfMove(mv) {
			// The droplet stays inside the module (e.g. a mixer's output
			// feeding the same mixer's next mix): no array transport at all.
			routed[id] = true
			cr.Routes[id] = Route{Move: mv, Start: 0, Steps: []chip.Point{ports.in[mv.To]}}
			continue
		}
		from, to := ports.out[mv.From], ports.in[mv.To]
		steps, start, err := astar(layout, blocked, tb, id, from, to, nextInject[from], horizon)
		if err != nil {
			retries[id]++
			if retries[id] > len(moves)+1 {
				return nil, fmt.Errorf("%w: %s -> %s", err, mv.From, mv.To)
			}
			queue = append(queue, id)
			continue
		}
		rt := Route{Move: mv, Start: start, Steps: steps}
		for k, p := range steps {
			tb.traj[[3]int{p.X, p.Y, start + k}] = id
		}
		tb.arrival[id] = rt.Arrival()
		nextInject[from] = rt.Arrival() + 1
		routed[id] = true
		cr.Routes[id] = rt
		if a := rt.Arrival(); a > cr.Makespan {
			cr.Makespan = a
		}
		free, err := route.Cost(layout.Width, layout.Height, blocked, from, to)
		if err != nil {
			return nil, err
		}
		cr.Serialized += free
	}
	return cr, nil
}

// astar searches (position, time) space for the earliest arrival at `to`,
// allowing on-array waiting and arbitrary injection delay (the droplet may
// stay inside its source module): every conflict-free (from, t) with
// t >= start is a zero-history entry state. Cost is arrival time.
func astar(layout *chip.Layout, blocked func(chip.Point) bool, tb *table, id int, from, to chip.Point, start, horizon int) ([]chip.Point, int, error) {
	manhattan := func(p chip.Point) int {
		dx, dy := p.X-to.X, p.Y-to.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	open := &stateHeap{}
	gScore := map[state]int{}
	parent := map[state]state{}
	for t := start; t <= horizon; t++ {
		if tb.conflicts(from, t, id) {
			continue
		}
		st := state{from, t}
		gScore[st] = t
		heap.Push(open, heapItem{st, t + manhattan(from)})
	}
	for open.Len() > 0 {
		it := heap.Pop(open).(heapItem)
		cur := it.s
		if it.f > gScore[cur]+manhattan(cur.pos) {
			continue // stale heap entry
		}
		if cur.pos == to {
			var rev []chip.Point
			last := cur
			for s := cur; ; {
				rev = append(rev, s.pos)
				last = s
				p, ok := parent[s]
				if !ok {
					break
				}
				s = p
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, last.t, nil
		}
		if cur.t >= horizon {
			continue
		}
		for _, d := range [5]chip.Point{{}, {X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			next := state{chip.Point{X: cur.pos.X + d.X, Y: cur.pos.Y + d.Y}, cur.t + 1}
			if next.pos.X < 0 || next.pos.Y < 0 || next.pos.X >= layout.Width || next.pos.Y >= layout.Height {
				continue
			}
			if blocked(next.pos) || tb.conflicts(next.pos, next.t, id) {
				continue
			}
			g := next.t
			if old, seen := gScore[next]; seen && old <= g {
				continue
			}
			gScore[next] = g
			parent[next] = cur
			heap.Push(open, heapItem{next, g + manhattan(next.pos)})
		}
	}
	return nil, 0, ErrUnroutable
}

type heapItem struct {
	s state
	f int
}

type state struct {
	pos chip.Point
	t   int
}

type stateHeap []heapItem

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
