// Package svg renders the library's planning artefacts as standalone SVG
// documents — schedules as Gantt charts, floorplans as module maps,
// electrode wear as heat maps — using nothing beyond string building, so
// reports and papers can embed vector graphics straight from the engine.
package svg

import (
	"fmt"
	"strings"

	"repro/internal/chip"
	"repro/internal/fluidsim"
	"repro/internal/sched"
)

// treeColors cycles distinguishable fills for component trees.
var treeColors = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

const (
	cellW, cellH = 54, 26
	labelW       = 64
	headerH      = 28
)

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Gantt renders the schedule as an SVG Gantt chart: one row per mixer, one
// column per cycle, cells coloured by component tree, plus a storage track.
func Gantt(s *sched.Schedule) string {
	labels := s.Forest.Labels()
	w := labelW + s.Cycles*cellW + 10
	h := headerH + (s.Mixers+1)*cellH + 40
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`, w, h)
	fmt.Fprintf(&b, `<text x="4" y="16">%s schedule: Mc=%d, Tc=%d, q=%d</text>`,
		esc(s.Algorithm), s.Mixers, s.Cycles, sched.StorageUnits(s))
	// Cycle headers.
	for t := 1; t <= s.Cycles; t++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%d</text>`,
			labelW+(t-1)*cellW+cellW/2, headerH+12, t)
	}
	// Mixer rows.
	for m := 1; m <= s.Mixers; m++ {
		y := headerH + m*cellH
		fmt.Fprintf(&b, `<text x="4" y="%d">M%d</text>`, y+17, m)
		for t := 1; t <= s.Cycles; t++ {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#ccc"/>`,
				labelW+(t-1)*cellW, y, cellW, cellH)
		}
	}
	for _, task := range s.Forest.Tasks {
		if task.ID < s.FirstTask {
			continue
		}
		a := s.Slots[task.ID]
		x := labelW + (a.Cycle-1)*cellW
		y := headerH + a.Mixer*cellH
		fill := treeColors[(task.Tree-1)%len(treeColors)]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"/>`,
			x+1, y+1, cellW-2, cellH-2, fill)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#fff">%s</text>`,
			x+cellW/2, y+17, esc(labels[task]))
	}
	// Storage track.
	profile := sched.StorageProfile(s)
	y := headerH + (s.Mixers+1)*cellH + 8
	fmt.Fprintf(&b, `<text x="4" y="%d">store</text>`, y+12)
	for t := 1; t <= s.Cycles; t++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%d</text>`,
			labelW+(t-1)*cellW+cellW/2, y+12, profile[t])
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// kindFills colour modules by kind.
var kindFills = map[chip.Kind]string{
	chip.Reservoir: "#4e79a7",
	chip.Mixer:     "#f28e2b",
	chip.Storage:   "#59a14f",
	chip.Waste:     "#e15759",
	chip.Output:    "#b07aa1",
}

// Layout renders the floorplan: the electrode grid, module blocks with
// names, ports as circles and mixer exits as diamonds.
func Layout(l *chip.Layout) string {
	const cs = 24 // cell size
	w, h := l.Width*cs+2, l.Height*cs+2
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`, w, h)
	for y := 0; y < l.Height; y++ {
		for x := 0; x < l.Width; x++ {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f7f7f7" stroke="#ddd"/>`,
				1+x*cs, 1+y*cs, cs, cs)
		}
	}
	for _, m := range l.Modules {
		fill := kindFills[m.Kind]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"/>`,
			1+m.Rect.X*cs, 1+m.Rect.Y*cs, m.Rect.W*cs, m.Rect.H*cs, fill)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#fff">%s</text>`,
			1+m.Rect.X*cs+m.Rect.W*cs/2, 1+m.Rect.Y*cs+m.Rect.H*cs/2+4, esc(m.Name))
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="5" fill="#333"/>`,
			1+m.Port.X*cs+cs/2, 1+m.Port.Y*cs+cs/2)
		if m.HasExit {
			ex, ey := 1+m.Exit.X*cs+cs/2, 1+m.Exit.Y*cs+cs/2
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="8" height="8" transform="rotate(45 %d %d)" fill="#333"/>`,
				ex-4, ey-4, ex, ey)
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Wear renders per-electrode actuation counts as a heat map over the
// floorplan: white (untouched) to dark red (hottest).
func Wear(res *fluidsim.Result, l *chip.Layout) string {
	const cs = 24
	w, h := l.Width*cs+2, l.Height*cs+2
	blocked := l.Blocked()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="9">`, w, h)
	max := res.MaxActuations
	if max == 0 {
		max = 1
	}
	for y := 0; y < l.Height; y++ {
		for x := 0; x < l.Width; x++ {
			p := chip.Point{X: x, Y: y}
			fill := "#ffffff"
			if blocked(p) {
				fill = "#dddddd"
			} else if n := res.Actuations[p]; n > 0 {
				// Interpolate white -> #b2182b.
				f := float64(n) / float64(max)
				r := 255 - int(f*float64(255-0xb2))
				g := 255 - int(f*float64(255-0x18))
				bl := 255 - int(f*float64(255-0x2b))
				fill = fmt.Sprintf("#%02x%02x%02x", r, g, bl)
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#eee"/>`,
				1+x*cs, 1+y*cs, cs, cs, fill)
			if n := res.Actuations[p]; n > 0 {
				fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%d</text>`,
					1+x*cs+cs/2, 1+y*cs+cs/2+3, n)
			}
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// Forestry renders per-tree mix counts as a labelled bar chart — a quick
// visual of how the forest amortises work across component trees.
func Forestry(counts []int) string {
	const barW, gap, maxH = 26, 6, 120
	if len(counts) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`
	}
	max := counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	w := len(counts)*(barW+gap) + gap
	h := maxH + 40
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`, w, h)
	for i, c := range counts {
		bh := c * maxH / max
		x := gap + i*(barW+gap)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
			x, 10+maxH-bh, barW, bh, treeColors[i%len(treeColors)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">T%d</text>`, x+barW/2, maxH+24, i+1)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%d</text>`, x+barW/2, 8+maxH-bh, c)
	}
	b.WriteString(`</svg>`)
	return b.String()
}
