package svg

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/chip"
	"repro/internal/exec"
	"repro/internal/fluidsim"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/ratio"
	"repro/internal/sched"
)

// wellFormed checks the document parses as XML.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, doc[:min(len(doc), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fixtures(t *testing.T) (*sched.Schedule, *chip.Layout, *fluidsim.Result) {
	t.Helper()
	g, err := minmix.Build(ratio.MustParse("2:1:1:1:1:1:9"))
	if err != nil {
		t.Fatalf("minmix.Build: %v", err)
	}
	f, err := forest.Build(g, 20)
	if err != nil {
		t.Fatalf("forest.Build: %v", err)
	}
	s, err := sched.SRS(f, 3)
	if err != nil {
		t.Fatalf("SRS: %v", err)
	}
	l := chip.PCRLayout()
	plan, err := exec.Execute(s, l)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wear, err := fluidsim.Replay(plan, l)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return s, l, wear
}

func TestGanttSVG(t *testing.T) {
	s, _, _ := fixtures(t)
	doc := Gantt(s)
	wellFormed(t, doc)
	// One filled cell per task plus the grid.
	if got := strings.Count(doc, "<rect"); got < len(s.Forest.Tasks) {
		t.Errorf("only %d rects for %d tasks", got, len(s.Forest.Tasks))
	}
	for _, want := range []string{"SRS schedule", "m1,1", "store"} {
		if !strings.Contains(doc, want) {
			t.Errorf("Gantt SVG missing %q", want)
		}
	}
}

func TestLayoutSVG(t *testing.T) {
	_, l, _ := fixtures(t)
	doc := Layout(l)
	wellFormed(t, doc)
	for _, m := range l.Modules {
		if !strings.Contains(doc, ">"+m.Name+"<") {
			t.Errorf("layout SVG missing module %s", m.Name)
		}
	}
	// Three mixer exits drawn as diamonds.
	if got := strings.Count(doc, "rotate(45"); got != 3 {
		t.Errorf("%d exit markers, want 3", got)
	}
}

func TestWearSVG(t *testing.T) {
	_, l, wear := fixtures(t)
	doc := Wear(wear, l)
	wellFormed(t, doc)
	if !strings.Contains(doc, "#dddddd") {
		t.Error("wear SVG missing module cells")
	}
	// The hottest electrode's count appears as text.
	if !strings.Contains(doc, ">"+itoa(wear.MaxActuations)+"<") {
		t.Errorf("wear SVG missing hottest count %d", wear.MaxActuations)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestForestrySVG(t *testing.T) {
	doc := Forestry([]int{7, 1, 2, 1, 4, 1, 2, 1})
	wellFormed(t, doc)
	if !strings.Contains(doc, ">T8<") || !strings.Contains(doc, ">7<") {
		t.Error("forestry SVG missing bars/labels")
	}
	empty := Forestry(nil)
	wellFormed(t, empty)
}

func TestEscaping(t *testing.T) {
	if esc(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Error("esc mismatch")
	}
}
