# Standard-library-only Go module; every target is pure `go` tooling.

GO ?= go

# Packages with new concurrency (worker pool, plan cache, parallel sweeps,
# streaming planner, fault injector, cyberphysical runtime, the parallel
# mixer-binding search, the transport-matrix cache, the observability
# registry, the synchronized engine, the HTTP serving core, the memoised
# graph fingerprints, the pooled packed planning kernels, the distributed
# artifact/cluster tier and the error-model analysis shared by concurrent
# plan requests) — raced explicitly by `make race`.
CONCURRENT_PKGS := ./internal/parallel ./internal/plancache ./internal/experiments ./internal/stream ./internal/synth ./internal/faults ./internal/runtime ./internal/exec ./internal/route ./internal/obs ./internal/audit ./internal/core ./internal/server ./internal/mixgraph ./internal/forest ./internal/sched ./internal/wal ./internal/fleet ./internal/contam ./internal/artifact ./internal/cluster ./internal/errormodel ./cmd/dmfbd

.PHONY: build test race vet fmt-check bench-smoke bench-routing bench-plan bench-plan-smoke bench-serve bench-error-smoke bench-fleet-smoke bench-cluster-smoke fuzz-smoke audit-smoke serve-smoke chaos-smoke chaos-migrate-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(CONCURRENT_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One fast iteration of every benchmark — verifies the harness wiring without
# waiting on real measurement runs.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Routing-kernel old-vs-new measurement run: incremental vs full-recompute
# placement annealing (bit-identity verified), cached vs cold matrices,
# Router vs map-BFS replay. Writes results/bench_routing.json (EXPERIMENTS
# §E7).
bench-routing:
	$(GO) run ./cmd/benchroute -out results/bench_routing.json

# Short fuzzing passes over the parser, the forest builder, the WAL replayer
# and the artifact decoder — enough to replay the corpora and explore a
# little, not a soak run.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseRatio -fuzztime=10s ./internal/ratio
	$(GO) test -fuzz=FuzzBuildForest -fuzztime=10s ./internal/forest
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=10s ./internal/wal
	$(GO) test -fuzz=FuzzArtifactDecode -fuzztime=10s ./internal/artifact

# End-to-end audit smoke: drive the CLIs through planning, streaming, fault
# recovery and dilution with the invariant auditor live (it is always on) and
# the metrics/trace exporters enabled. Any audit violation makes the binary
# exit non-zero, failing this target. Artifacts go to a throwaway tmp dir.
audit-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; set -e; \
	$(GO) run ./cmd/mdst -ratio 2:1:1:1:1:1:9 -demand 20 -metrics -trace "$$tmp/mdst.jsonl" >/dev/null; \
	$(GO) run ./cmd/mdst -ratio 2:1:1:1:1:1:9 -demand 32 -storage 3 -sched SRS -metrics >/dev/null; \
	$(GO) run ./cmd/chipsim -faults 0.05 -seed 3 -metrics -tracefile "$$tmp/chipsim.jsonl" >/dev/null; \
	$(GO) run ./cmd/chipsim -deadmixer M3:2 -metrics >/dev/null; \
	$(GO) run ./cmd/dilute -num 3 -depth 4 -demand 8 -sched SRS >/dev/null; \
	test -s "$$tmp/mdst.jsonl" && test -s "$$tmp/chipsim.jsonl"; \
	echo "audit-smoke: all runs audited clean"

# Planning-kernel old-vs-new measurement run: packed arena forests and the
# allocation-free MMS/SRS kernel vs the legacy pointer pipeline, plus the
# warm end-to-end plan request and the incremental demand scan. Bit-identity
# is verified before anything is measured. Writes results/bench_plan.json
# (EXPERIMENTS §E10).
bench-plan:
	$(GO) run ./cmd/benchplan -out results/bench_plan.json

# Fast wiring check for the same harness: runs the identity checks and one
# iteration of each workload, writes nothing.
bench-plan-smoke:
	$(GO) run ./cmd/benchplan -smoke

# dmfbd load-test run: boots the serving core in-process, drives every
# endpoint scenario at fixed concurrency, writes latency/throughput
# percentiles to results/bench_serve.json (EXPERIMENTS §E9).
bench-serve:
	$(GO) run ./cmd/benchserve -out results/bench_serve.json

# Fast wiring check for the fleet scenarios only: a small /v1/assay run on a
# healthy fleet and on one with 25% of its chips degraded, asserting the
# churn throughput floor. Writes to a throwaway file.
bench-fleet-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; set -e; \
	$(GO) run ./cmd/benchserve -requests 0 -assay-requests 150 -churn-sessions 0 -out "$$tmp/bench_fleet.json"; \
	echo "bench-fleet-smoke: churn floor held"

# Fast wiring check for the multi-node scenarios only: a 3-node in-process
# cluster shares one pool of plan keys and the harness asserts fleet-wide
# cold builds stay within the build-ratio ceiling (owner builds once) and
# that warm cross-node adoption beats a cold build; then the membership-churn
# scenario takes one member out of the ring mid-run and asserts zero lost
# batches, zero artifact rebuilds and zero background errors. Writes to a
# throwaway file.
bench-cluster-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; set -e; \
	$(GO) run ./cmd/benchserve -requests 0 -assay-requests 0 -cluster-requests 300 -cluster-keys 20 -out "$$tmp/bench_cluster.json"; \
	echo "bench-cluster-smoke: cold-build ceiling, warm adoption, churn invariants held"

# Error-model smoke: the two invariants the error-aware planner rests on —
# the closed-form bound dominates Monte-Carlo on every protocol × algorithm,
# and the E13 sweep shows the aware planner beating the blind one at the
# ι=0.05 acceptance point — plus one iteration of the analysis/selection
# benchmarks to keep the harness wired.
bench-error-smoke:
	$(GO) test -run 'TestAnalyticDominatesMonteCarlo' ./internal/errormodel
	$(GO) test -run 'TestE13AwareBeatsBlindUnderNoise' ./internal/experiments
	$(GO) test -run XXX -bench 'BenchmarkAnalyze|BenchmarkErrorAwareSelection' -benchtime 1x ./internal/errormodel ./internal/stream
	@echo "bench-error-smoke: analytic bound dominates, aware planner beats blind"

# Serving smoke: boot dmfbd on an ephemeral port, hit every endpoint, then
# SIGTERM and assert a clean graceful drain — exactly the cmd-level
# integration test, run with the race detector on.
serve-smoke:
	$(GO) test -race -run 'TestServeSmokeAndDrain' ./cmd/dmfbd
	@echo "serve-smoke: boot, all endpoints, graceful drain OK"

# Crash-recovery soak: SIGKILL a real dmfbd child mid-stream, restart it on
# the same WAL, and assert no acknowledged batch is ever silently lost —
# CHAOS_CYCLES kill/restart rounds, race detector on for the harness side.
# (`go test ./cmd/dmfbd` runs the same test at 3 cycles.)
chaos-smoke:
	CHAOS_CYCLES=50 $(GO) test -race -run 'TestChaosKillRestartRecovery' -timeout 10m ./cmd/dmfbd
	@echo "chaos-smoke: 50 kill/restart cycles, no acked work lost"

# Cluster-migration chaos: a 3-node dmfbd fleet of real processes, the
# session's ring owner SIGKILLed mid-stream, restarted on its WAL, and the
# recovered session migrated to a survivor — the continued timeline must be
# bit-identical and the old owner must redirect. Race detector on.
chaos-migrate-smoke:
	$(GO) test -race -run 'TestChaosMigrateKillOwner' -timeout 5m ./cmd/dmfbd
	@echo "chaos-migrate-smoke: owner killed, session migrated, timeline bit-identical"

check: build vet fmt-check test race bench-smoke bench-plan-smoke bench-error-smoke fuzz-smoke audit-smoke serve-smoke chaos-smoke chaos-migrate-smoke bench-fleet-smoke bench-cluster-smoke

clean:
	$(GO) clean
	rm -f *.test
