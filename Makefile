# Standard-library-only Go module; every target is pure `go` tooling.

GO ?= go

# Packages with new concurrency (worker pool, plan cache, parallel sweeps,
# streaming planner) — raced explicitly by `make race`.
CONCURRENT_PKGS := ./internal/parallel ./internal/plancache ./internal/experiments ./internal/stream ./internal/synth

.PHONY: build test race vet fmt-check bench-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(CONCURRENT_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One fast iteration of every benchmark — verifies the harness wiring without
# waiting on real measurement runs.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

check: build vet fmt-check test race

clean:
	$(GO) clean
	rm -f *.test
