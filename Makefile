# Standard-library-only Go module; every target is pure `go` tooling.

GO ?= go

# Packages with new concurrency (worker pool, plan cache, parallel sweeps,
# streaming planner, fault injector, cyberphysical runtime, the parallel
# mixer-binding search and the transport-matrix cache) — raced explicitly by
# `make race`.
CONCURRENT_PKGS := ./internal/parallel ./internal/plancache ./internal/experiments ./internal/stream ./internal/synth ./internal/faults ./internal/runtime ./internal/exec ./internal/route

.PHONY: build test race vet fmt-check bench-smoke bench-routing fuzz-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(CONCURRENT_PKGS)

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One fast iteration of every benchmark — verifies the harness wiring without
# waiting on real measurement runs.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Routing-kernel old-vs-new measurement run: incremental vs full-recompute
# placement annealing (bit-identity verified), cached vs cold matrices,
# Router vs map-BFS replay. Writes results/bench_routing.json (EXPERIMENTS
# §E7).
bench-routing:
	$(GO) run ./cmd/benchroute -out results/bench_routing.json

# Short fuzzing passes over the parser and the forest builder — enough to
# replay the corpora and explore a little, not a soak run.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseRatio -fuzztime=10s ./internal/ratio
	$(GO) test -fuzz=FuzzBuildForest -fuzztime=10s ./internal/forest

check: build vet fmt-check test race bench-smoke fuzz-smoke

clean:
	$(GO) clean
	rm -f *.test
