package dmfb

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus micro-benchmarks of the pipeline stages. Each
// table/figure benchmark regenerates the artefact end to end; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/mtcs"
	"repro/internal/plancache"
	"repro/internal/ratio"
	"repro/internal/rma"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/stream"
	"repro/internal/synth"
)

// purgePlans resets the process-wide plan cache so a benchmark iteration
// measures from-scratch planning rather than cache lookups.
func purgePlans() { plancache.Default().Purge() }

// sequentially forces the single-threaded reference path for the duration of
// the benchmark (the parallel fan-out is the default).
func sequentially(b *testing.B) {
	prev := experiments.Sequential
	experiments.Sequential = true
	b.Cleanup(func() { experiments.Sequential = prev })
}

// BenchmarkTable2 regenerates Table 2: five protocols x nine schemes, D=32.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		purgePlans()
		rows, err := experiments.Table2(32)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 on the L=16 population (the full
// L=32 population is exercised once by cmd/experiments; see BenchmarkTable3Full).
func BenchmarkTable3(b *testing.B) {
	ds, err := synth.Dataset(16, 2, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		purgePlans()
		if _, err := experiments.Table3Compute(ds, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Full runs the paper's full configuration on the sequential
// reference path with a cold plan cache: 6289 ratios of L=32, D=32, three
// algorithms, baseline + MMS + SRS each. Compare BenchmarkTable3FullParallel.
func BenchmarkTable3Full(b *testing.B) {
	sequentially(b)
	ds := synth.PaperDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		purgePlans()
		if _, err := experiments.Table3Compute(ds, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3FullParallel is BenchmarkTable3Full on the default
// GOMAXPROCS-wide fan-out (identical output, see the golden equality tests).
func BenchmarkTable3FullParallel(b *testing.B) {
	ds := synth.PaperDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		purgePlans()
		if _, err := experiments.Table3Compute(ds, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the storage-constrained streaming sweep.
func BenchmarkTable4(b *testing.B) {
	cfg := experiments.DefaultTable4Config()
	for i := 0; i < b.N; i++ {
		purgePlans()
		if _, err := experiments.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSweep measures the storage-budget sweep that dominated the
// seed's Table 4 cost: stream.Run for q' = 1..8 at D = 32. Each Run scans
// candidate demands with one incremental forest builder and plans the
// repeated full-size pass once; the cache is purged per iteration so this
// measures the incremental planner itself, not cache hits.
func BenchmarkStreamSweep(b *testing.B) {
	base, err := minmix.Build(pcrRatio)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		purgePlans()
		for q := 1; q <= 8; q++ {
			cfg := stream.Config{Base: base, Mixers: 3, Storage: q, Scheduler: stream.SRS}
			if _, err := stream.Run(cfg, 32); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamSweepCached is BenchmarkStreamSweep against a warm plan
// cache: after the first iteration every Run is pure cache lookups.
func BenchmarkStreamSweepCached(b *testing.B) {
	base, err := minmix.Build(pcrRatio)
	if err != nil {
		b.Fatal(err)
	}
	purgePlans()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 1; q <= 8; q++ {
			cfg := stream.Config{Base: base, Mixers: 3, Storage: q, Scheduler: stream.SRS}
			if _, err := stream.Run(cfg, 32); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5Actuations regenerates the §5 chip-level comparison.
func BenchmarkFig5Actuations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig5Compute(20)
		if err != nil {
			b.Fatal(err)
		}
		if f.ForestActuations >= f.RepeatedActuations {
			b.Fatal("engine did not win")
		}
	}
}

// BenchmarkFig6 regenerates the demand sweep on the L=16 population.
func BenchmarkFig6(b *testing.B) {
	ds, err := synth.Dataset(16, 2, 6)
	if err != nil {
		b.Fatal(err)
	}
	demands := []int{1, 2, 4, 8, 16, 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		purgePlans()
		if _, err := experiments.Fig6Compute(ds, demands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the mixer sweep (PCR, D=32, M=1..15).
func BenchmarkFig7(b *testing.B) {
	mixers := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	for i := 0; i < b.N; i++ {
		purgePlans()
		if _, err := experiments.Fig7Compute(mixers, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pipeline micro-benchmarks ---

var pcrRatio = ratio.MustParse("2:1:1:1:1:1:9")
var ex3Ratio = ratio.MustParse("25:5:5:5:5:13:13:25:1:159")

// BenchmarkMinMix measures base-tree construction (MM).
func BenchmarkMinMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := minmix.Build(ex3Ratio); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMA measures base-tree construction (RMA reconstruction).
func BenchmarkRMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rma.Build(ex3Ratio); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMTCS measures base-DAG construction (MTCS reconstruction).
func BenchmarkMTCS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := mtcs.Build(ex3Ratio); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestBuild measures mixing-forest growth (D=64 over the
// ten-fluid Ex.3 tree).
func BenchmarkForestBuild(b *testing.B) {
	base, err := minmix.Build(ex3Ratio)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Build(base, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMS and BenchmarkSRS measure forest scheduling (Ex.3, D=64,
// 5 mixers).
func BenchmarkMMS(b *testing.B) {
	base, _ := minmix.Build(ex3Ratio)
	f, _ := forest.Build(base, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.MMS(f, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSRS(b *testing.B) {
	base, _ := minmix.Build(ex3Ratio)
	f, _ := forest.Build(base, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.SRS(f, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageCounting measures Algorithm 3.
func BenchmarkStorageCounting(b *testing.B) {
	base, _ := minmix.Build(ex3Ratio)
	f, _ := forest.Build(base, 64)
	s, _ := sched.SRS(f, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sched.StorageUnits(s) < 0 {
			b.Fatal("negative storage")
		}
	}
}

// BenchmarkCostMatrix measures chip routing (all-pairs BFS on the PCR
// floorplan).
func BenchmarkCostMatrix(b *testing.B) {
	l := PCRLayout()
	for i := 0; i < b.N; i++ {
		if _, err := route.CostMatrix(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRequest measures the end-to-end demand-driven path with a
// cold plan cache (the seed's uncached semantics).
func BenchmarkEngineRequest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		purgePlans()
		e, err := NewEngine(Config{Target: pcrRatio, Scheduler: SRS, Storage: 5})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Request(32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRequestCached measures the same path against a warm plan
// cache: re-planning an identical demand is a lookup, not a rebuild.
func BenchmarkEngineRequestCached(b *testing.B) {
	purgePlans()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(Config{Target: pcrRatio, Scheduler: SRS, Storage: 5})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Request(32); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension micro-benchmarks ---

// BenchmarkConcurrentRouting measures the space-time A* router on the full
// D=20 PCR plan.
func BenchmarkConcurrentRouting(b *testing.B) {
	g, _ := minmix.Build(pcrRatio)
	f, _ := forest.Build(g, 20)
	s, _ := sched.SRS(f, 3)
	layout := PCRLayout()
	plan, err := Execute(s, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RouteConcurrently(plan, layout); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastPins measures pin grouping on the routed PCR plan.
func BenchmarkBroadcastPins(b *testing.B) {
	g, _ := minmix.Build(pcrRatio)
	f, _ := forest.Build(g, 20)
	s, _ := sched.SRS(f, 3)
	layout := PCRLayout()
	plan, _ := Execute(s, layout)
	res, err := RouteConcurrently(plan, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BroadcastPins(res, layout); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErrorModel measures 1000-trial Monte-Carlo propagation.
func BenchmarkErrorModel(b *testing.B) {
	g, _ := minmix.Build(pcrRatio)
	f, _ := forest.Build(g, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateErrors(f, ErrorParams{SplitImbalance: 0.05, Trials: 1000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactScheduler measures the bitmask DP on an 11-task forest.
func BenchmarkExactScheduler(b *testing.B) {
	g, _ := minmix.Build(pcrRatio)
	f, _ := forest.Build(g, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleExact(f, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTarget measures the combined dilution-pair plan.
func BenchmarkMultiTarget(b *testing.B) {
	reqs := []MultiRequest{
		{Target: MustParseRatio("3:13"), Demand: 8},
		{Target: MustParseRatio("5:11"), Demand: 8},
	}
	for i := 0; i < b.N; i++ {
		if _, err := PlanMulti(reqs, MM, 0, MMS); err != nil {
			b.Fatal(err)
		}
	}
}
