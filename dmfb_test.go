package dmfb

import (
	"strings"
	"testing"
)

// TestQuickstart exercises the documented top-level flow end to end.
func TestQuickstart(t *testing.T) {
	target := MustParseRatio("2:1:1:1:1:1:9")
	engine, err := NewEngine(Config{Target: target, Algorithm: MM, Scheduler: SRS, Storage: 5})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	batch, err := engine.Request(20)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if batch.Result.TotalCycles != 11 {
		t.Errorf("Tc = %d, want 11 (Fig. 3)", batch.Result.TotalCycles)
	}
}

func TestLowLevelPipeline(t *testing.T) {
	g, err := BuildGraph(MM, PCR16().Ratio)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	f, err := BuildForest(g, 16)
	if err != nil {
		t.Fatalf("BuildForest: %v", err)
	}
	if s := f.Stats(); s.Waste != 0 || s.InputTotal != 16 {
		t.Errorf("forest stats W=%d I=%d, want 0 and 16", s.Waste, s.InputTotal)
	}
	sch, err := ScheduleMMS(f, MixerLowerBound(g))
	if err != nil {
		t.Fatalf("ScheduleMMS: %v", err)
	}
	if err := sch.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if q := StorageUnits(sch); q < 0 {
		t.Errorf("q = %d", q)
	}
	if !strings.Contains(Gantt(sch), "MMS schedule") {
		t.Error("Gantt output unexpected")
	}
}

func TestChipLayer(t *testing.T) {
	g, _ := BuildGraph(MM, PCR16().Ratio)
	f, _ := BuildForest(g, 20)
	sch, err := ScheduleSRS(f, 3)
	if err != nil {
		t.Fatalf("ScheduleSRS: %v", err)
	}
	plan, err := Execute(sch, PCRLayout())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if plan.TotalCost <= 0 {
		t.Error("no actuations counted")
	}
	m, err := CostMatrix(PCRLayout())
	if err != nil || len(m) == 0 {
		t.Errorf("CostMatrix: %v", err)
	}
}

func TestBaselineFacade(t *testing.T) {
	b, err := Baseline(MM, PCR16().Ratio, 3, 20)
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	if b.Cycles != 40 {
		t.Errorf("baseline Tr = %d, want 40", b.Cycles)
	}
}

func TestStreamFacade(t *testing.T) {
	g, _ := BuildGraph(MM, PCR16().Ratio)
	res, err := Stream(StreamConfig{Base: g, Mixers: 3, Storage: 3, Scheduler: SRS}, 32)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if res.Emitted < 32 {
		t.Errorf("emitted %d, want >= 32", res.Emitted)
	}
}

func TestRatioHelpers(t *testing.T) {
	r, err := RatioFromPercent([]float64{10, 8, 0.8, 0.8, 1, 1, 78.4}, 4)
	if err != nil {
		t.Fatalf("RatioFromPercent: %v", err)
	}
	if !r.Equal(MustParseRatio("2:1:1:1:1:1:9")) {
		t.Errorf("RatioFromPercent = %v", r)
	}
	if _, err := NewRatio(1, 2); err == nil {
		t.Error("invalid ratio accepted")
	}
	if a, err := ParseAlgorithm("RMA"); err != nil || a != RMA {
		t.Errorf("ParseAlgorithm = %v, %v", a, err)
	}
}

func TestProtocolsFacade(t *testing.T) {
	if len(Protocols()) != 5 {
		t.Error("Protocols() should list the five Table 2 mixtures")
	}
	p, err := PCRAtDepth(6)
	if err != nil || p.Ratio.Sum() != 64 {
		t.Errorf("PCRAtDepth(6): %v, %v", p.Ratio, err)
	}
}
