package dmfb

import (
	"strings"
	"testing"
)

func TestAssayFacade(t *testing.T) {
	a, err := ParseAssayString(`
accuracy 4
mixture pcr 10 8 0.8 0.8 1 1 78.4
chip mixers=3 storage=5
use MM SRS
demand pcr 20
`)
	if err != nil {
		t.Fatalf("ParseAssayString: %v", err)
	}
	rep, err := a.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Results[0].Batch.Result.TotalCycles != 11 {
		t.Errorf("assay PCR Tc = %d, want 11", rep.Results[0].Batch.Result.TotalCycles)
	}
}

func TestSVGFacade(t *testing.T) {
	g, _ := BuildGraph(MM, PCR16().Ratio)
	f, _ := BuildForest(g, 16)
	s, err := ScheduleSRS(f, 3)
	if err != nil {
		t.Fatalf("ScheduleSRS: %v", err)
	}
	if doc := GanttSVG(s); !strings.Contains(doc, "<svg") {
		t.Error("GanttSVG malformed")
	}
	if doc := LayoutSVG(PCRLayout()); !strings.Contains(doc, "OUT") {
		t.Error("LayoutSVG missing modules")
	}
	layout := PCRLayout()
	plan, err := Execute(s, layout)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wear, err := Replay(plan, layout)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if doc := WearSVG(wear, layout); !strings.Contains(doc, "<svg") {
		t.Error("WearSVG malformed")
	}
}

func TestPinsAndContamFacade(t *testing.T) {
	g, _ := BuildGraph(MM, PCR16().Ratio)
	f, _ := BuildForest(g, 16)
	s, _ := ScheduleSRS(f, 3)
	layout := PCRLayout()
	plan, err := Execute(s, layout)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	res, err := RouteConcurrently(plan, layout)
	if err != nil {
		t.Fatalf("RouteConcurrently: %v", err)
	}
	a, err := BroadcastPins(res, layout)
	if err != nil {
		t.Fatalf("BroadcastPins: %v", err)
	}
	if a.Reduction() <= 1 {
		t.Errorf("pin reduction = %.2f", a.Reduction())
	}
	rep := AnalyzeContamination(res)
	if rep.Cells == 0 {
		t.Error("no contamination cells analysed")
	}
}

func TestExactAndMobilityFacade(t *testing.T) {
	g, _ := BuildGraph(MM, PCR16().Ratio)
	f, _ := BuildForest(g, 8)
	ex, err := ScheduleExact(f, 3)
	if err != nil {
		t.Fatalf("ScheduleExact: %v", err)
	}
	mms, _ := ScheduleMMS(f, 3)
	if ex.Cycles > mms.Cycles {
		t.Errorf("exact Tc=%d worse than MMS %d", ex.Cycles, mms.Cycles)
	}
	ms := Mobilities(f, mms.Cycles)
	if len(ms) != len(f.Tasks) {
		t.Errorf("mobilities for %d tasks, want %d", len(ms), len(f.Tasks))
	}
	if len(CriticalTasks(f)) == 0 {
		t.Error("no critical tasks")
	}
}

func TestMultiTargetFacade(t *testing.T) {
	plan, err := PlanMulti([]MultiRequest{
		{Target: MustParseRatio("3:13"), Demand: 8},
		{Target: MustParseRatio("5:11"), Demand: 8},
	}, MM, 0, MMS)
	if err != nil {
		t.Fatalf("PlanMulti: %v", err)
	}
	if plan.Forest.Stats().InputTotal > plan.IndependentInputs {
		t.Error("combined plan worse than independent")
	}
}

func TestErrorModelFacade(t *testing.T) {
	g, _ := BuildGraph(MM, PCR16().Ratio)
	f, _ := BuildForest(g, 16)
	rep, err := SimulateErrors(f, ErrorParams{SplitImbalance: 0.05, Trials: 50, Seed: 1})
	if err != nil {
		t.Fatalf("SimulateErrors: %v", err)
	}
	if rep.MaxErr <= 0 {
		t.Error("no error measured")
	}
	if RoundingErrorBound(4) != 0.0625 {
		t.Error("rounding bound wrong")
	}
}
