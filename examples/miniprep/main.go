// Miniprep under scarce storage: demand-driven streaming across passes.
//
// A point-of-care scenario from the paper's introduction: confirmatory
// screening keeps asking for more droplets of the same mixture as earlier
// results come in. Here the One-Step Miniprep mixture (Ex.2 of Table 2,
// phenol : chloroform : isoamylalcohol = 128:123:5 on a scale of 256) is
// streamed on a chip with only three storage cells, so larger requests are
// split into multiple passes (the Table 4 mechanism), while the engine keeps
// a running timeline across requests.
package main

import (
	"fmt"
	"log"

	dmfb "repro"
)

func main() {
	var miniprep dmfb.Protocol
	for _, p := range dmfb.Protocols() {
		if p.Key == "Ex.2" {
			miniprep = p
		}
	}
	fmt.Printf("protocol: %s\nratio %s (d=%d)\n\n", miniprep.Name, miniprep.Ratio, miniprep.Ratio.Depth())

	engine, err := dmfb.NewEngine(dmfb.Config{
		Target:    miniprep.Ratio,
		Algorithm: dmfb.MM,
		Scheduler: dmfb.SRS,
		Storage:   3, // a very small chip
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine ready: %d mixers, 3 storage cells\n\n", engine.Mixers())

	// Demand arrives in waves as screening results come back.
	for round, want := range []int{4, 8, 16} {
		batch, err := engine.Request(want)
		if err != nil {
			log.Fatal(err)
		}
		res := batch.Result
		fmt.Printf("request %d: %d droplets -> %d pass(es) (D'=%d), cycles %d..%d, inputs %d, waste %d\n",
			round+1, want, len(res.Passes), res.PerPassDemand,
			batch.StartCycle, batch.StartCycle+res.TotalCycles-1, res.TotalInputs, res.TotalWaste)
		for _, p := range res.Passes {
			fmt.Printf("  pass at cycle %d: %d droplets, Tc=%d, q=%d (<= 3)\n",
				p.StartCycle+batch.StartCycle-1, p.Demand, p.Schedule.Cycles, p.Storage)
		}
	}
	fmt.Printf("\ntotal: %d droplets planned over %d cycles\n", engine.Emitted(), engine.Elapsed())

	fmt.Println("\nemission timeline (cycle: droplets):")
	for _, e := range engine.Emissions() {
		fmt.Printf("  %4d: %d\n", e.Cycle, e.Count)
	}

	// What the same demand would have cost by repeating the mixing tree.
	baseline, err := dmfb.Baseline(dmfb.MM, miniprep.Ratio, engine.Mixers(), engine.Emitted())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepeated baseline for %d droplets: %d cycles, %d inputs\n",
		engine.Emitted(), baseline.Cycles, baseline.Inputs)
}
