// PCR master-mix engine: the paper's running example end to end (§4-§5).
//
// The program walks the complete pipeline on the PCR master-mix ratio
// 2:1:1:1:1:1:9:
//
//  1. builds the MM base mixing tree (Fig. 1's T1),
//  2. grows the D=16 mixing forest (Fig. 1: 8 trees, 19 mix-splits, zero
//     waste, inputs exactly equal to the ratio),
//  3. grows the D=20 forest (Fig. 2: 27 mix-splits, 5 waste, 25 inputs),
//  4. schedules it with SRS on three mixers (Fig. 3/4: Tc=11, q=5) and
//     prints the Gantt chart,
//  5. binds the schedule to the Fig. 5-style chip layout and reports the
//     electrode-actuation comparison against repeated baseline mixing.
package main

import (
	"fmt"
	"log"

	dmfb "repro"
)

func main() {
	pcr := dmfb.PCR16()
	fmt.Printf("protocol: %s (%s)\nratio %s at accuracy d=%d\n\n",
		pcr.Name, pcr.Source, pcr.Ratio, pcr.Ratio.Depth())

	// 1. Base mixing tree.
	base, err := dmfb.BuildGraph(dmfb.MM, pcr.Ratio)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base.Render())

	// 2. The D=16 forest: full waste recycling.
	f16, err := dmfb.BuildForest(base, 16)
	if err != nil {
		log.Fatal(err)
	}
	s16 := f16.Stats()
	fmt.Printf("D=16 forest (Fig. 1): |F|=%d Tms=%d W=%d I=%d I[]=%v\n\n",
		s16.Trees, s16.Mixes, s16.Waste, s16.InputTotal, s16.Inputs)

	// 3. The D=20 forest of Fig. 2.
	f20, err := dmfb.BuildForest(base, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f20.Render())

	// 4. SRS schedule on three mixers (Fig. 3/4).
	schedule, err := dmfb.ScheduleSRS(f20, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dmfb.Gantt(schedule))

	// 5. Chip-level execution (Fig. 5).
	layout := dmfb.PCRLayout()
	fmt.Println(layout.Render())
	plan, err := dmfb.Execute(schedule, layout)
	if err != nil {
		log.Fatal(err)
	}
	oms, err := dmfb.ScheduleOMS(base, 3)
	if err != nil {
		log.Fatal(err)
	}
	basePlan, err := dmfb.Execute(oms, layout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("electrode actuations: streaming engine %d, repeated MM baseline %d (%.2fx)\n",
		plan.TotalCost, 10*basePlan.TotalCost, float64(10*basePlan.TotalCost)/float64(plan.TotalCost))
	fmt.Println("(paper reports 386 vs 980 on its hand-placed floorplan — a 2.54x gap)")
}
