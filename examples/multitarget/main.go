// Multi-target preparation: sharing waste across different mixtures.
//
// The paper solves MDST (many droplets, one target) and leaves SDMT for
// mixtures open (Table 1). This example demonstrates the library's
// SDMT-flavoured extension: two gradient variants of the same dilution
// series (sample : buffer at 3/16 and 5/16) are prepared in one combined
// forest whose waste pool is keyed by exact concentration vector, so a
// droplet spilled while preparing one target seeds the other whenever their
// intermediate sub-mixtures coincide — plus the same idea on two PCR
// master-mix variants over the same seven reservoirs.
package main

import (
	"fmt"
	"log"

	dmfb "repro"
)

func main() {
	// Two dilution targets over the same sample/buffer pair.
	reqs := []dmfb.MultiRequest{
		{Target: dmfb.MustParseRatio("3:13"), Demand: 8},
		{Target: dmfb.MustParseRatio("5:11"), Demand: 8},
	}
	plan, err := dmfb.PlanMulti(reqs, dmfb.MM, 0, dmfb.MMS)
	if err != nil {
		log.Fatal(err)
	}
	st := plan.Forest.Stats()
	fmt.Println("dilution pair 3/16 and 5/16, 8 droplets each:")
	fmt.Printf("  combined forest: %d mix-splits, %d inputs, %d waste\n", st.Mixes, st.InputTotal, st.Waste)
	fmt.Printf("  independent forests would use %d inputs (saving: %d droplets)\n",
		plan.IndependentInputs, plan.IndependentInputs-st.InputTotal)
	fmt.Printf("  emitted per target: %v, Tc=%d on %d mixers, q=%d\n\n",
		plan.Emitted, plan.Schedule.Cycles, plan.Schedule.Mixers, plan.Storage)

	// Two PCR master-mix variants over the same seven reservoirs.
	pcrReqs := []dmfb.MultiRequest{
		{Target: dmfb.MustParseRatio("2:1:1:1:1:1:9"), Demand: 12},
		{Target: dmfb.MustParseRatio("1:2:1:1:1:1:9"), Demand: 12},
	}
	pcrPlan, err := dmfb.PlanMulti(pcrReqs, dmfb.MM, 3, dmfb.SRS)
	if err != nil {
		log.Fatal(err)
	}
	pst := pcrPlan.Forest.Stats()
	fmt.Println("two PCR master-mix variants, 12 droplets each:")
	fmt.Printf("  combined forest: %d mix-splits, %d inputs, %d waste, %d cross-tree reuses\n",
		pst.Mixes, pst.InputTotal, pst.Waste, pst.Reuses)
	fmt.Printf("  independent forests would use %d inputs\n", pcrPlan.IndependentInputs)
	fmt.Printf("  Tc=%d, q=%d\n", pcrPlan.Schedule.Cycles, pcrPlan.Storage)
}
