// Quickstart: plan a stream of PCR master-mix droplets with the public API.
//
// The PCR master-mix (buffer, dNTPs, primers, template, optimase, water) is
// approximated as 2:1:1:1:1:1:9 on a scale of 16. We ask the engine for 20
// droplets with 5 on-chip storage units and print the plan — 11 cycles on 3
// mixers, matching Fig. 3 of the DAC 2014 paper.
package main

import (
	"fmt"
	"log"

	dmfb "repro"
)

func main() {
	target, err := dmfb.ParseRatio("2:1:1:1:1:1:9")
	if err != nil {
		log.Fatal(err)
	}

	engine, err := dmfb.NewEngine(dmfb.Config{
		Target:    target,
		Algorithm: dmfb.MM,  // base mixing tree: MinMix
		Scheduler: dmfb.SRS, // storage-frugal scheduling
		Storage:   5,        // five on-chip storage cells
		// Mixers: 0 -> use Mlb of the MM tree (3 for this ratio)
	})
	if err != nil {
		log.Fatal(err)
	}

	batch, err := engine.Request(20)
	if err != nil {
		log.Fatal(err)
	}
	res := batch.Result
	fmt.Printf("demand 20 droplets of %s on %d mixers:\n", target, engine.Mixers())
	fmt.Printf("  %d pass(es), %d cycles, %d input droplets, %d waste\n\n",
		len(res.Passes), res.TotalCycles, res.TotalInputs, res.TotalWaste)
	fmt.Println(dmfb.Gantt(res.Passes[0].Schedule))

	// Compare against re-running the mixing tree 10 times.
	baseline, err := dmfb.Baseline(dmfb.MM, target, engine.Mixers(), 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeated-baseline cost: %d cycles, %d input droplets\n", baseline.Cycles, baseline.Inputs)
	fmt.Printf("the streaming engine is %.1f%% faster and uses %.1f%% less reactant\n",
		100*float64(baseline.Cycles-res.TotalCycles)/float64(baseline.Cycles),
		100*float64(baseline.Inputs-res.TotalInputs)/float64(baseline.Inputs))
}
