// Dilution streaming: the N=2 special case (the paper's reference [20]).
//
// A drug-susceptibility assay needs many droplets of a sample diluted to
// 22%. The dilution engine rounds the concentration to c/2^d, streams
// droplets on demand, and — because sample is precious while buffer is
// cheap — reports exactly how many droplets of each the plan consumes,
// compared against re-running the classic dilution tree.
package main

import (
	"fmt"
	"log"

	dmfb "repro"
)

func main() {
	target, err := dmfb.DilutionFromFraction(0.22, 6) // -> 14/64 = 21.875%
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target CF: %d/%d = %.3f%%\n", target.Num, int64(1)<<uint(target.Depth), 100*target.CF())

	engine, err := dmfb.NewDilutionEngine(target, dmfb.DilutionConfig{
		Scheduler: dmfb.SRS,
		Storage:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d mixers, 4 storage cells\n\n", engine.Mixers())

	for _, n := range []int{8, 8, 16} {
		b, err := engine.Request(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %2d droplets: %d pass(es), %d cycles, %d inputs, %d waste\n",
			n, len(b.Result.Passes), b.Result.TotalCycles, b.Result.TotalInputs, b.Result.TotalWaste)
	}

	sample, buffer := engine.SampleUsage()
	fmt.Printf("\nconsumed: %d sample droplets, %d buffer droplets for %d targets\n",
		sample, buffer, engine.Emitted())

	r, err := target.Ratio()
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := dmfb.Baseline(dmfb.MM, r, engine.Mixers(), engine.Emitted())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeated dilution tree would take %d cycles and %d input droplets\n",
		baseline.Cycles, baseline.Inputs)
}
