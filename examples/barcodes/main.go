// Molecular-barcodes mixture: choosing the base algorithm and mixer count.
//
// The ten-fluid DNA-barcoding mixture (Ex.3 of Table 2,
// 25:5:5:5:5:13:13:25:1:159 on a scale of 256) is the paper's most complex
// example. This program compares all three base mixing algorithms (MM, RMA,
// MTCS) under both forest schedulers for a 32-droplet demand, then sweeps
// the mixer count to show the latency/storage trade-off of Fig. 7.
package main

import (
	"fmt"
	"log"

	dmfb "repro"
)

func main() {
	var barcodes dmfb.Protocol
	for _, p := range dmfb.Protocols() {
		if p.Key == "Ex.3" {
			barcodes = p
		}
	}
	fmt.Printf("protocol: %s\nratio %s (%d fluids, d=%d)\n\n",
		barcodes.Name, barcodes.Ratio, barcodes.Ratio.N(), barcodes.Ratio.Depth())

	const demand = 32
	for _, alg := range []dmfb.Algorithm{dmfb.MM, dmfb.RMA, dmfb.MTCS} {
		base, err := dmfb.BuildGraph(alg, barcodes.Ratio)
		if err != nil {
			log.Fatal(err)
		}
		bs := base.Stats()
		f, err := dmfb.BuildForest(base, demand)
		if err != nil {
			log.Fatal(err)
		}
		fs := f.Stats()
		fmt.Printf("%-5s base tree: %d mix-splits, %d inputs; D=%d forest: Tms=%d, I=%d, W=%d\n",
			alg, bs.Mixes, bs.InputTotal, demand, fs.Mixes, fs.InputTotal, fs.Waste)
		for _, sch := range []struct {
			name string
			run  func(*dmfb.Forest, int) (*dmfb.Schedule, error)
		}{{"MMS", dmfb.ScheduleMMS}, {"SRS", dmfb.ScheduleSRS}} {
			s, err := sch.run(f, 4)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("      %s on 4 mixers: Tc=%d, q=%d\n", sch.name, s.Cycles, dmfb.StorageUnits(s))
		}
		// The repeated baseline for contrast.
		b, err := dmfb.Baseline(alg, barcodes.Ratio, 4, demand)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("      repeated baseline: Tr=%d, Ir=%d\n\n", b.Cycles, b.Inputs)
	}

	// Mixer sweep (the Fig. 7 trade-off) on the MM forest.
	base, err := dmfb.BuildGraph(dmfb.MM, barcodes.Ratio)
	if err != nil {
		log.Fatal(err)
	}
	f, err := dmfb.BuildForest(base, demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mixer sweep (MM forest, D=32):")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "mixers", "Tc(MMS)", "q(MMS)", "Tc(SRS)", "q(SRS)")
	for mc := 1; mc <= 12; mc++ {
		mms, err := dmfb.ScheduleMMS(f, mc)
		if err != nil {
			log.Fatal(err)
		}
		srs, err := dmfb.ScheduleSRS(f, mc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %12d %12d %12d\n",
			mc, mms.Cycles, dmfb.StorageUnits(mms), srs.Cycles, dmfb.StorageUnits(srs))
	}
}
