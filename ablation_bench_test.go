package dmfb

// Ablation benchmarks: each one isolates a design choice of the paper (or of
// this reproduction) and reports the metric it buys as a custom benchmark
// metric, so `go test -bench=Ablation -benchmem` doubles as an ablation
// table. Metrics are ratios (baseline / variant), so higher is better for
// the paper's design choice.

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/forest"
	"repro/internal/minmix"
	"repro/internal/mtcs"
	"repro/internal/ratio"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/stream"
)

var ablationRatio = ratio.MustParse("26:21:2:2:3:3:199") // Ex.1

// BenchmarkAblationForestVsRepeated isolates the paper's core idea: the
// mixing forest against ⌈D/2⌉ repeated tree passes, on input droplets and
// cycles (D=32).
func BenchmarkAblationForestVsRepeated(b *testing.B) {
	var inputRatio, cycleRatio float64
	for i := 0; i < b.N; i++ {
		base, err := minmix.Build(ablationRatio)
		if err != nil {
			b.Fatal(err)
		}
		mc := sched.Mlb(base)
		f, err := forest.Build(base, 32)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sched.MMS(f, mc)
		if err != nil {
			b.Fatal(err)
		}
		baseline, err := core.Baseline(core.MM, ablationRatio, mc, 32)
		if err != nil {
			b.Fatal(err)
		}
		inputRatio = float64(baseline.Inputs) / float64(f.Stats().InputTotal)
		cycleRatio = float64(baseline.Cycles) / float64(s.Cycles)
	}
	b.ReportMetric(inputRatio, "inputs-saved-x")
	b.ReportMetric(cycleRatio, "cycles-saved-x")
}

// BenchmarkAblationSRSQueuePolicy isolates SRS's two-queue priority design
// against plain MMS on storage units (PCR forest, D=32, 3 mixers).
func BenchmarkAblationSRSQueuePolicy(b *testing.B) {
	base, err := minmix.Build(pcrRatio)
	if err != nil {
		b.Fatal(err)
	}
	f, err := forest.Build(base, 32)
	if err != nil {
		b.Fatal(err)
	}
	var qRatio, tcPenalty float64
	for i := 0; i < b.N; i++ {
		mms, err := sched.MMS(f, 3)
		if err != nil {
			b.Fatal(err)
		}
		srs, err := sched.SRS(f, 3)
		if err != nil {
			b.Fatal(err)
		}
		qRatio = float64(sched.StorageUnits(mms)) / float64(sched.StorageUnits(srs))
		tcPenalty = float64(srs.Cycles) / float64(mms.Cycles)
	}
	b.ReportMetric(qRatio, "storage-saved-x")
	b.ReportMetric(tcPenalty, "tc-penalty-x")
}

// BenchmarkAblationMTCSSharing isolates common-subtree sharing: MTCS inputs
// against MM inputs on Ex.1.
func BenchmarkAblationMTCSSharing(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		mm, err := minmix.Build(ablationRatio)
		if err != nil {
			b.Fatal(err)
		}
		shared, err := mtcs.Build(ablationRatio)
		if err != nil {
			b.Fatal(err)
		}
		saved = float64(mm.Stats().InputTotal) / float64(shared.Stats().InputTotal)
	}
	b.ReportMetric(saved, "inputs-saved-x")
}

// BenchmarkAblationPlacement isolates the simulated-annealing placer: flow
// cost of the PCR floorplan before and after optimization.
func BenchmarkAblationPlacement(b *testing.B) {
	base, _ := minmix.Build(pcrRatio)
	f, _ := forest.Build(base, 20)
	s, err := sched.SRS(f, 3)
	if err != nil {
		b.Fatal(err)
	}
	layout := chip.PCRLayout()
	plan, err := exec.Execute(s, layout)
	if err != nil {
		b.Fatal(err)
	}
	var improvement float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix, err := route.CostMatrix(layout)
		if err != nil {
			b.Fatal(err)
		}
		before := chip.PlacementCost(plan.Flow, matrix)
		_, after, err := chip.OptimizePlacement(layout, plan.Flow, route.CostMatrix, 400, 1)
		if err != nil {
			b.Fatal(err)
		}
		improvement = float64(before) / float64(after)
	}
	b.ReportMetric(improvement, "flow-cost-saved-x")
}

// BenchmarkAblationPersistentPool isolates the pool-persistent demand-driven
// mode: total inputs for four requests of 4 droplets, one-shot vs persisted.
func BenchmarkAblationPersistentPool(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		totals := map[bool]int64{}
		for _, persist := range []bool{false, true} {
			e, err := core.New(core.Config{Target: pcrRatio, PersistPool: persist})
			if err != nil {
				b.Fatal(err)
			}
			for r := 0; r < 4; r++ {
				batch, err := e.Request(4)
				if err != nil {
					b.Fatal(err)
				}
				totals[persist] += batch.Result.TotalInputs
			}
		}
		saved = float64(totals[false]) / float64(totals[true])
	}
	b.ReportMetric(saved, "inputs-saved-x")
}

// BenchmarkAblationStorageBudget isolates multi-pass splitting: cycles at
// q'=3 against unlimited storage (PCR, D=32, SRS).
func BenchmarkAblationStorageBudget(b *testing.B) {
	base, _ := minmix.Build(pcrRatio)
	var penalty float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		constrained, err := stream.Run(stream.Config{Base: base, Mixers: 3, Storage: 3, Scheduler: stream.SRS}, 32)
		if err != nil {
			b.Fatal(err)
		}
		free, err := stream.Run(stream.Config{Base: base, Mixers: 3, Scheduler: stream.SRS}, 32)
		if err != nil {
			b.Fatal(err)
		}
		penalty = float64(constrained.TotalCycles) / float64(free.TotalCycles)
	}
	b.ReportMetric(penalty, "cycle-penalty-x")
}
