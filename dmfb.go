// Package dmfb is a library for demand-driven mixture preparation and
// droplet streaming on digital microfluidic (DMF) biochips, reproducing
// Roy, Kumar, Chakrabarti, Bhattacharya and Chakrabarty, "Demand-Driven
// Mixture Preparation and Droplet Streaming using Digital Microfluidic
// Biochips", DAC 2014.
//
// The library solves the MDST problem (Multiple Droplets of a Single
// Target): emit a stream of D > 2 droplets of a mixture of N fluids in a
// target ratio a1:...:aN (ratio-sum 2^d) using only (1:1) mix-split
// operations, with far fewer mix steps and input droplets than re-running a
// classic mixing tree ⌈D/2⌉ times. The key data structure is the mixing
// forest, which recycles the waste droplets of a base mixing tree (built by
// MM, RMA or MTCS) into further target droplets.
//
// Typical use:
//
//	target := dmfb.MustParseRatio("2:1:1:1:1:1:9") // PCR master-mix, d=4
//	engine, err := dmfb.NewEngine(dmfb.Config{
//		Target:    target,
//		Algorithm: dmfb.MM,
//		Scheduler: dmfb.SRS,
//		Storage:   5,
//	})
//	batch, err := engine.Request(20) // plan 20 target droplets
//	fmt.Println(batch.Result.TotalCycles) // 11 cycles on 3 mixers
//
// Lower-level entry points expose each stage: BuildGraph (base mixing
// trees), BuildForest (the mixing forest), ScheduleMMS / ScheduleSRS /
// ScheduleOMS (mixer/time assignment), StorageUnits and Gantt (Algorithm 3
// and Fig. 4), Stream (storage-constrained multi-pass planning), and the
// chip layer (PCRLayout, Execute) for electrode-actuation accounting.
package dmfb

import (
	"repro/internal/assay"
	"repro/internal/audit"
	"repro/internal/cancel"
	"repro/internal/chip"
	"repro/internal/contam"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/errormodel"
	"repro/internal/exec"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/fluidsim"
	"repro/internal/forest"
	"repro/internal/mixgraph"
	"repro/internal/motion"
	"repro/internal/obs"
	"repro/internal/pins"
	"repro/internal/plancache"
	"repro/internal/protocols"
	"repro/internal/ratio"
	"repro/internal/route"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/stream"
	"repro/internal/svg"
)

// Ratio is an integer target mixture ratio with power-of-two ratio-sum.
type Ratio = ratio.Ratio

// Ratio constructors.
var (
	// NewRatio builds a ratio from integer parts (sum must be 2^d).
	NewRatio = ratio.New
	// ParseRatio reads the colon form "2:1:1:1:1:1:9".
	ParseRatio = ratio.Parse
	// MustParseRatio is ParseRatio for known-good literals.
	MustParseRatio = ratio.MustParse
	// RatioFromPercent approximates a percentage composition at accuracy
	// level d, keeping every fluid present.
	RatioFromPercent = ratio.FromPercent
)

// Algorithm selects the base mixing-graph builder.
type Algorithm = core.Algorithm

// Base mixing algorithms.
const (
	// MM is MinMix (Thies et al. 2008).
	MM = core.MM
	// RMA is the layout-aware builder of Roy et al. 2011 (reconstruction).
	RMA = core.RMA
	// MTCS is the reagent-saving builder of Kumar et al. 2013
	// (reconstruction).
	MTCS = core.MTCS
	// RSM is the reagent-saving builder of Hsieh et al. 2012
	// (reconstruction); named in the paper's Table 1 but outside its
	// benchmarked trio.
	RSM = core.RSM
)

// ParseAlgorithm resolves "MM", "RMA" or "MTCS".
var ParseAlgorithm = core.ParseAlgorithm

// Scheduler selects the forest scheduling scheme.
type Scheduler = stream.Scheduler

// Forest schedulers.
const (
	// MMS is M_Mixers_Schedule (Algorithm 1), latency-oriented.
	MMS = stream.MMS
	// SRS is Storage_Reduced_Scheduling (Algorithm 2), storage-frugal.
	SRS = stream.SRS
)

// Config configures a demand-driven engine; see core.Config.
type Config = core.Config

// Engine plans droplet emission on demand; see core.Engine.
type Engine = core.Engine

// Batch is one Request's plan.
type Batch = core.Batch

// NewEngine builds a demand-driven mixture-preparation engine.
var NewEngine = core.New

// Graph is a base mix-split graph (one pass, two target droplets).
type Graph = mixgraph.Graph

// BuildGraph constructs the base mixing graph for a target with the given
// algorithm.
func BuildGraph(alg Algorithm, target Ratio) (*Graph, error) {
	return alg.Build(target)
}

// Forest is a mixing forest meeting a droplet demand.
type Forest = forest.Forest

// ForestStats aggregates a forest's droplet economy (Tms, W, I[], I).
type ForestStats = forest.Stats

// BuildForest grows a mixing forest over a base graph for a demand.
var BuildForest = forest.Build

// Schedule is a complete mixer/time assignment for a mixing forest.
type Schedule = sched.Schedule

// Forest and tree schedulers.
var (
	// ScheduleMMS runs Algorithm 1 on a forest with mc mixers.
	ScheduleMMS = sched.MMS
	// ScheduleSRS runs Algorithm 2.
	ScheduleSRS = sched.SRS
	// ScheduleOMS optimally schedules a single base graph (Luo-Akella).
	ScheduleOMS = sched.OMS
	// MixerLowerBound returns Mlb, the fewest mixers achieving
	// critical-path completion of a base graph.
	MixerLowerBound = sched.Mlb
	// StorageUnits counts the storage cells a schedule needs (Algorithm 3).
	StorageUnits = sched.StorageUnits
	// Gantt renders a schedule as the paper's modified Gantt chart (Fig 4).
	Gantt = sched.Gantt
)

// StreamConfig configures storage-constrained multi-pass streaming.
type StreamConfig = stream.Config

// StreamResult is a complete multi-pass emission plan.
type StreamResult = stream.Result

// Stream plans `demand` droplets under chip-resource constraints (Table 4).
var Stream = stream.Run

// StreamCtx is Stream with cooperative cancellation: a done context abandons
// the plan at the next pass boundary with an error wrapping ErrCanceled.
var StreamCtx = stream.RunCtx

// ErrCanceled is wrapped by every context-aware entry point (StreamCtx,
// RunWithFaultsCtx, ExecuteOptimizedCtx, Engine.RequestCtx, ...) when the
// caller's context is done; match with errors.Is. The original context cause
// (context.Canceled or context.DeadlineExceeded) is preserved in the chain.
var ErrCanceled = cancel.ErrCanceled

// Baseline plans the repeated-baseline engine (RMM / RRMA / RMTCS).
var Baseline = core.Baseline

// PlanCacheStats reports the hit/miss/eviction counters of the process-wide
// plan cache that Stream, NewEngine Requests and the experiment sweeps share
// (see internal/plancache).
func PlanCacheStats() plancache.Stats { return plancache.Default().Stats() }

// PurgePlanCache empties the process-wide plan cache and resets its counters;
// useful for benchmarking uncached planning paths.
func PurgePlanCache() {
	plancache.Default().Purge()
	plancache.Default().ResetStats()
}

// BaselineResult is a repeated-baseline plan.
type BaselineResult = core.BaselineResult

// Chip layer.
type (
	// Layout is a chip floorplan of reservoirs, mixers, storage cells,
	// waste reservoirs and the output port.
	Layout = chip.Layout
	// TransportPlan is a schedule bound to a layout: per-droplet moves and
	// total electrode actuations.
	TransportPlan = exec.Plan
	// TransportMatrix is the dense index-addressed inter-module
	// transport-cost matrix produced by the routing kernel.
	TransportMatrix = route.Matrix
)

var (
	// PCRLayout is the Fig. 5-style PCR master-mix floorplan.
	PCRLayout = chip.PCRLayout
	// AutoLayout builds a lattice floorplan for any protocol census.
	AutoLayout = chip.AutoLayout
	// CostMatrix computes inter-module transport costs on a layout as the
	// historical map form (uncached; hot paths use TransportMatrixFor).
	CostMatrix = route.CostMatrix
	// TransportMatrixFor returns the dense transport-cost matrix of a
	// layout, served from the process-wide layout-fingerprint cache.
	TransportMatrixFor = route.MatrixFor
	// TransportMatrixBuilds counts from-scratch matrix computations; compare
	// deltas to verify hot paths flood each geometry exactly once.
	TransportMatrixBuilds = route.MatrixBuildCount
	// PurgeTransportMatrixCache drops every cached matrix (for cold-path
	// benchmarking).
	PurgeTransportMatrixCache = route.PurgeMatrixCache
	// PrewarmLayout eagerly floods and caches a layout's transport matrix so
	// the first Execute/ExecuteBatch on it is cache-hit fast.
	PrewarmLayout = core.PrewarmLayout
	// ErrUnknownModulePair is returned when a transport cost is requested
	// for a module outside the bound layout; match with errors.Is.
	ErrUnknownModulePair = route.ErrUnknownPair
	// Execute binds a schedule to a layout and counts electrode actuations.
	Execute = exec.Execute
	// ExecuteOptimized additionally searches over mixer bindings
	// (branch-and-bound with parallel first-level branches).
	ExecuteOptimized = exec.ExecuteOptimized
	// ExecuteOptimizedCtx is ExecuteOptimized with cooperative cancellation
	// checked at every branch of the binding search.
	ExecuteOptimizedCtx = exec.ExecuteOptimizedCtx
	// OptimizePlacement improves a floorplan for a traffic matrix by
	// incremental simulated annealing (one matrix evaluation per search).
	OptimizePlacement = chip.OptimizePlacement
	// OptimizePlacementFull is the legacy full-recompute annealer; it
	// accepts non-geometric matrix functions and serves as the reference
	// implementation OptimizePlacement reproduces bit for bit.
	OptimizePlacementFull = chip.OptimizePlacementFull
)

// Cyberphysical execution under fault injection (see internal/faults and
// internal/runtime): replay a plan cycle-by-cycle against a deterministic
// seeded fault injector, sense errors at checkpoints, and recover through
// bounded retries, minimal subtree replays and graceful degradation.
type (
	// FaultParams configures the deterministic fault injector.
	FaultParams = faults.Params
	// FaultInjector injects seeded faults and logs every one it fires.
	FaultInjector = faults.Injector
	// FaultEvent is one injected fault.
	FaultEvent = faults.Event
	// FaultKind enumerates the injectable fault classes.
	FaultKind = faults.Kind
	// RecoveryPolicy bounds the runtime's sensing and recovery behaviour.
	RecoveryPolicy = runtime.Policy
	// RecoveryReport is the structured outcome of one closed-loop run.
	RecoveryReport = runtime.Report
)

var (
	// NewFaultInjector validates FaultParams and builds an injector.
	NewFaultInjector = faults.New
	// FaultRate builds FaultParams applying one uniform per-event rate to
	// every probabilistic fault class.
	FaultRate = faults.Rate
	// RunWithFaults executes one schedule on a layout under fault injection.
	RunWithFaults = runtime.Run
	// RunWithFaultsCtx is RunWithFaults with cooperative cancellation at
	// every cycle boundary; the partial report is still returned.
	RunWithFaultsCtx = runtime.RunCtx
	// RunStreamWithFaults executes every pass of a multi-pass stream plan.
	RunStreamWithFaults = runtime.RunStream
	// RunStreamWithFaultsCtx is RunStreamWithFaults with cooperative
	// cancellation at every pass and cycle boundary.
	RunStreamWithFaultsCtx = runtime.RunStreamCtx
	// ErrUnrecoverable is wrapped by every recovery dead-end the runtime
	// returns; match with errors.Is.
	ErrUnrecoverable = runtime.ErrUnrecoverable
)

// Invariant auditing (see internal/audit): every plan the engines produce
// and every closed-loop execution is checked against policy-independent
// invariants — mass conservation, exact CF arithmetic over 2^d denominators,
// the forest closed forms and the storage occupancy bound — and violations
// surface as typed errors, never as silently wrong droplets.
type (
	// AuditReport is the outcome of one invariant audit; Clean() reports
	// whether every check passed, Err() wraps the violations.
	AuditReport = audit.Report
	// AuditViolation is one typed invariant breach with its event trail.
	AuditViolation = audit.Violation
	// AuditCode classifies a violation (mass conservation, CF exactness,
	// target count, storage occupancy, ...).
	AuditCode = audit.Code
)

var (
	// ErrAuditViolation is wrapped by every failed audit; match with
	// errors.Is.
	ErrAuditViolation = audit.ErrViolation
	// AuditForest re-checks a mixing forest's closed-form invariants.
	AuditForest = audit.CheckForest
	// AuditSchedule re-checks a schedule's structural and storage
	// invariants.
	AuditSchedule = audit.CheckSchedule
	// AuditPlan audits a forest and its schedule together.
	AuditPlan = audit.CheckPlan
)

// Observability (see internal/obs): a process-wide metrics registry and
// structured JSONL event tracer, disabled by default at near-zero cost
// (one atomic pointer load per call site).
type (
	// ObsOptions configures the observability registry (trace sink).
	ObsOptions = obs.Options
	// ObsSnapshot is a point-in-time copy of every counter and histogram.
	ObsSnapshot = obs.Snapshot
)

var (
	// EnableObservability turns on metrics and (optionally) tracing
	// process-wide, starting from a fresh registry.
	EnableObservability = obs.Enable
	// DisableObservability returns every instrumented call site to its
	// near-zero disabled cost and drops the registry.
	DisableObservability = obs.Disable
	// ObservabilitySnapshot copies the current counters and histograms.
	ObservabilitySnapshot = obs.TakeSnapshot
	// WriteObservability renders the registry in a sorted, line-oriented
	// text format.
	WriteObservability = obs.WriteMetrics
)

// Replay walks a transport plan electrode by electrode, producing
// per-electrode wear counts, a heat map and the chip's reliability
// bottleneck (see internal/fluidsim).
var Replay = fluidsim.Replay

// WearResult is the outcome of a Replay.
type WearResult = fluidsim.Result

// RouteConcurrently routes all droplets of a transport plan simultaneously
// under the static and dynamic droplet-interference constraints
// (see internal/motion).
var RouteConcurrently = motion.RoutePlan

// ConcurrentRouting is the outcome of RouteConcurrently.
type ConcurrentRouting = motion.Result

// Multi-target planning (SDMT-flavoured extension; see internal/core and
// forest/multi.go): several mixtures over one fluid set share a combined
// forest and its waste pool.
type (
	// MultiRequest asks for droplets of one target mixture.
	MultiRequest = core.MultiRequest
	// MultiPlan is the scheduled combined plan.
	MultiPlan = core.MultiPlan
)

// PlanMulti builds and schedules a combined multi-target plan.
var PlanMulti = core.PlanMulti

// Volumetric error propagation (see internal/errormodel).
type (
	// ErrorParams configures the Monte-Carlo split/dispense error model.
	ErrorParams = errormodel.Params
	// ErrorReport summarises the CF error distribution of the targets.
	ErrorReport = errormodel.Report
)

var (
	// SimulateErrors propagates volumetric errors through a forest.
	SimulateErrors = errormodel.Simulate
	// RoundingErrorBound is the paper's 1/2^d CF approximation bound.
	RoundingErrorBound = errormodel.RoundingErrorBound
)

// Dilution layer — the N=2 special case of droplet streaming (the
// high-throughput dilution engine of Roy et al., IET-CDT 2013 [20]).
type (
	// DilutionTarget is a concentration factor c/2^d of a sample in buffer.
	DilutionTarget = dilution.Target
	// DilutionEngine streams droplets at one CF on demand.
	DilutionEngine = dilution.Engine
	// DilutionConfig carries the dilution engine's chip resources.
	DilutionConfig = dilution.Config
)

var (
	// NewDilutionEngine builds a dilution engine for a target CF.
	NewDilutionEngine = dilution.New
	// DilutionFromFraction rounds a desired concentration to c/2^d.
	DilutionFromFraction = dilution.FromFraction
)

// JSON export of planning artefacts (see internal/export).
var (
	// ExportForest, ExportSchedule, ExportStream and ExportPlan convert the
	// corresponding artefacts into stable JSON documents.
	ExportForest   = export.Forest
	ExportSchedule = export.Schedule
	ExportStream   = export.Stream
	ExportPlan     = export.Plan
	// WriteJSON emits any exported document as indented JSON.
	WriteJSON = export.Write
)

// Assay text format (see internal/assay): declarative mixture-preparation
// jobs compiled onto the engine.
type (
	// Assay is a parsed job description.
	Assay = assay.Assay
	// AssayReport is the outcome of running one.
	AssayReport = assay.RunReport
)

var (
	// ParseAssay reads an assay description.
	ParseAssay = assay.Parse
	// ParseAssayString is ParseAssay over a string.
	ParseAssayString = assay.ParseString
)

// SVG rendering of planning artefacts (see internal/svg).
var (
	// GanttSVG renders a schedule as an SVG Gantt chart.
	GanttSVG = svg.Gantt
	// LayoutSVG renders a floorplan.
	LayoutSVG = svg.Layout
	// WearSVG renders per-electrode wear as a heat map.
	WearSVG = svg.Wear
)

// Pin-constrained addressing and contamination analysis (see internal/pins
// and internal/contam).
type (
	// PinAssignment is a broadcast-addressing plan.
	PinAssignment = pins.Assignment
	// ContaminationReport summarises cross-contamination exposure.
	ContaminationReport = contam.Report
)

var (
	// BroadcastPins groups electrodes onto shared control pins.
	BroadcastPins = pins.Broadcast
	// AnalyzeContamination reports shared cells and residue transitions.
	AnalyzeContamination = contam.Analyze
)

// Exact scheduling and mobility analysis (see internal/sched).
var (
	// ScheduleExact computes a provably optimal schedule (small forests).
	ScheduleExact = sched.Exact
	// Mobilities computes per-task ASAP/ALAP windows.
	Mobilities = sched.Mobilities
	// CriticalTasks returns the zero-slack tasks at the tight horizon.
	CriticalTasks = sched.CriticalTasks
)

// Protocol is a named real-life mixture with provenance.
type Protocol = protocols.Protocol

var (
	// PCR16 is the paper's running example (2:1:1:1:1:1:9 at d=4).
	PCR16 = protocols.PCR16
	// PCRAtDepth approximates the PCR master-mix at accuracy level d.
	PCRAtDepth = protocols.PCRAtDepth
	// Protocols lists the five Table 2 example mixtures (L=256).
	Protocols = protocols.Table2
)
